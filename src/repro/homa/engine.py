"""The Homa protocol engine: packet handling, grants, retransmission.

One :class:`HomaTransport` per (host, protocol number).  Sockets register
by port; RPC message IDs are even for requests, ``request | 1`` for
responses (the Homa/Linux convention).  Receive processing runs in softirq
context on the single core the session's 5-tuple RSS-hashes to -- the
bottleneck §5.2 measures -- while completed messages are handed to
application threads for the copy/decrypt stage.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ProtocolError, TransportError
from repro.homa.codec import EncodedMessage, MessageCodec, SegmentPlan
from repro.homa.constants import HomaConfig
from repro.homa.message import InboundMessage, OutboundMessage
from repro.net.headers import PROTO_HOMA, PacketType, TransportHeader
from repro.net.packet import Packet
from repro.nic.tso import TsoSegment


class HomaTransport:
    """Protocol engine shared by all Homa (or SMT) sockets on a host."""

    def __init__(self, host, config: Optional[HomaConfig] = None, proto: int = PROTO_HOMA):
        self.host = host
        self.loop = host.loop
        self.costs = host.costs
        self.config = config or HomaConfig()
        self.proto = proto
        host.register_transport(proto, self)
        self._sockets: dict[int, "HomaSocket"] = {}  # noqa: F821
        # Outbound keyed by msg_id (sender-unique); inbound by (peer, port, id).
        self._outbound: dict[int, OutboundMessage] = {}
        self._encoded: dict[int, EncodedMessage] = {}
        self._inbound: dict[tuple[int, int, int], InboundMessage] = {}
        self._delivered: set[tuple[int, int, int]] = set()
        self._next_msg_id = 2
        # Lazily-batched ACKs (Homa/Linux acks lazily; responses implicitly
        # ack their requests): peer -> (local_port, peer_port, [msg ids]).
        self._ack_batch: dict[int, tuple[int, int, list[int]]] = {}
        self.ack_batch_size = 8
        self.ack_flush_interval = 100e-6
        # Stats the tests and benchmarks read.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.replays_dropped = 0
        self.spurious_ignored = 0
        self.resend_requests = 0
        self.packets_retransmitted = 0
        self.corrupt_recoveries = 0

    # -- socket registry ---------------------------------------------------------

    def bind(self, socket, port: int) -> None:
        if port in self._sockets:
            raise TransportError(f"port {port} already bound")
        self._sockets[port] = socket

    def alloc_msg_id(self, codec: MessageCodec) -> int:
        # Managed sessions (repro.ctrl) carve per-session lanes out of the
        # ID space; unmanaged codecs fall through to the shared counter.
        alloc = getattr(codec, "alloc_msg_id", None)
        if alloc is not None:
            msg_id = alloc()
            if msg_id is not None:
                return msg_id
        msg_id = self._next_msg_id
        self._next_msg_id += 2
        if msg_id >= codec.max_message_ids():
            raise TransportError("message ID space exhausted for this session")
        return msg_id

    def forget_delivered(self, peer_addr: int, peer_port: int) -> int:
        """Drop delivered-ID memory for one peer socket (rekey support).

        A rekey resets the session's message-ID space, so previously seen
        IDs from that peer become valid again; without this purge the
        engine would treat the new epoch's messages as spurious duplicates.
        """
        stale = [k for k in self._delivered if k[0] == peer_addr and k[1] == peer_port]
        for key in stale:
            self._delivered.discard(key)
        return len(stale)

    # -- transmit path ---------------------------------------------------------------

    def send_message(
        self,
        codec: MessageCodec,
        src_port: int,
        dest_addr: int,
        dest_port: int,
        msg_id: int,
        encoded: EncodedMessage,
    ) -> float:
        """Register an outbound message and transmit its unscheduled part.

        Returns the CPU cost of the transmission work (the caller charges
        it to the right context: app thread for new messages).
        """
        if encoded.wire_len > self.config.max_message_size * 2:
            raise TransportError(
                f"message of {encoded.wire_len} wire bytes exceeds the maximum"
            )
        msg = OutboundMessage(
            msg_id=msg_id,
            dest_addr=dest_addr,
            dest_port=dest_port,
            src_port=src_port,
            wire_len=encoded.wire_len,
            segment_capacity=codec.segment_capacity(self.host.nic.mtu_payload),
            plans=encoded.plans,
            granted=min(encoded.wire_len, self.config.unscheduled_bytes),
            created_at=self.loop.now,
            last_activity=self.loop.now,
        )
        key = (dest_addr, msg_id)
        encoded.codec = codec
        self._outbound[key] = msg
        self._encoded[key] = encoded
        self.messages_sent += 1
        obs = self.loop.obs
        if obs is not None:
            obs.metrics.counter(f"{self.host.name}.homa.tx.messages").add()
            # Explicit begin/end: the span closes when the message is
            # acked (implicitly or explicitly) or its sender state times
            # out, arbitrarily many events later.
            msg.obs_span = obs.tracer.begin(
                "homa.tx",
                f"{self.host.name}.msg{msg_id}",
                peer=dest_addr,
                bytes=encoded.wire_len,
            )
        cost = self.costs.homa_tx_per_message + encoded.tx_cpu_cost
        cost += self._granted_cost(msg, encoded)
        self._arm_sender_timeout(msg)
        return cost

    def kick(self, dest_addr: int, msg_id: int) -> None:
        """Transmit the registered message's granted plans.

        Callers charge :meth:`send_message`'s returned CPU cost to their
        thread *before* kicking, so transmission correctly waits for the
        send-side work (encode, crypto, descriptor setup).
        """
        key = (dest_addr, msg_id)
        msg = self._outbound.get(key)
        encoded = self._encoded.get(key)
        if msg is None or encoded is None:
            return
        self._transmit_granted(msg, encoded)

    def _granted_cost(self, msg: OutboundMessage, encoded: EncodedMessage) -> float:
        """CPU cost of transmitting the not-yet-sent plans below the grant."""
        cost = 0.0
        mss = self.host.nic.mtu_payload
        for plan in encoded.plans:
            if plan.sent or plan.tso_offset >= msg.granted:
                continue
            npkts = max(1, (plan.length + mss - 1) // mss)
            cost += (
                self.costs.homa_tx_per_packet * npkts
                + self.costs.driver_tx_per_segment
            )
            if plan.tls is not None:
                cost += self.costs.offload_meta_per_segment
        return cost

    def _transmit_granted(self, msg: OutboundMessage, encoded: EncodedMessage) -> float:
        """Send every unsent plan below the grant limit; returns CPU cost."""
        cost = 0.0
        mss = self.host.nic.mtu_payload
        for plan in encoded.plans:
            if plan.sent or plan.tso_offset >= msg.granted:
                continue
            plan.sent = True
            msg.sent_bytes += plan.length
            npkts = max(1, (plan.length + mss - 1) // mss)
            cost += (
                self.costs.homa_tx_per_packet * npkts
                + self.costs.driver_tx_per_segment
            )
            if plan.tls is not None:
                cost += self.costs.offload_meta_per_segment
            cost += self.costs.offload_resync * self._post_plan(msg, encoded, plan)
        return cost

    def _post_plan(self, msg: OutboundMessage, encoded: EncodedMessage, plan: SegmentPlan) -> int:
        """Post one segment (plus any resyncs); returns the resync count."""
        nic = self.host.nic
        queue = encoded.nic_queue
        if queue is None:
            queue = (msg.msg_id >> 1) % nic.num_queues
        pres = []
        if encoded.codec is not None:
            pres = encoded.codec.segment_pre_descriptors(plan, queue)
        for pre in pres:
            nic.post(queue, pre)
        header = TransportHeader(
            src_port=msg.src_port,
            dst_port=msg.dest_port,
            msg_id=msg.msg_id,
            pkt_type=PacketType.DATA,
            msg_len=msg.wire_len,
            tso_offset=plan.tso_offset,
            priority=self._data_priority(msg.wire_len),
        )
        nic.post(
            queue,
            TsoSegment(
                src_addr=self.host.addr,
                dst_addr=msg.dest_addr,
                proto=self.proto,
                header=header,
                payload=plan.payload,
                mss=nic.mtu_payload,
                tls=plan.tls,
            ),
        )
        return len(pres)

    def _data_priority(self, wire_len: int) -> int:
        cfg = self.config
        if wire_len <= cfg.unscheduled_bytes:
            return cfg.unscheduled_priority
        return cfg.unscheduled_priority - 1  # scheduled data, refined by grants

    def _send_control(
        self,
        dest_addr: int,
        header: TransportHeader,
        queue: Optional[int] = None,
    ) -> None:
        nic = self.host.nic
        if queue is None:
            queue = 0
        nic.post(
            queue,
            TsoSegment(
                src_addr=self.host.addr,
                dst_addr=dest_addr,
                proto=self.proto,
                header=header,
                payload=b"",
                mss=nic.mtu_payload,
            ),
        )

    def _arm_sender_timeout(self, msg: OutboundMessage) -> None:
        key = (msg.dest_addr, msg.msg_id)

        def check() -> None:
            msg.sender_timer = None
            if msg.acked or key not in self._outbound:
                return
            # An *inactivity* timeout, not a deadline since send: a large
            # message can legitimately be grant-starved past the window
            # under overload, and freeing live state turns a slow RPC into
            # an unrecoverable one (the receiver's RESENDs and the RPC
            # layer's retransmissions then find nothing).  Re-arm while
            # grants show the receiver making forward progress; free after
            # a full window without one (dead receiver or broken path --
            # RESENDs deliberately do not count, or a peer re-requesting a
            # blackholed message would pin state alive while every RESEND
            # triggers a multi-packet retransmit burst).
            # The 1 ns floor absorbs float rounding: ``now - last_activity``
            # can land an epsilon short of the timeout, and re-arming for
            # that epsilon would fire at the same virtual instant forever.
            remaining = self.config.sender_timeout - (
                self.loop.now - msg.last_activity
            )
            if remaining > 1e-9:
                msg.sender_timer = self.loop.timer_later(remaining, check)
                return
            del self._outbound[key]
            self._encoded.pop(key, None)
            self._end_tx_span(msg, "timeout")

        msg.sender_timer = self.loop.timer_later(self.config.sender_timeout, check)

    def _cancel_sender_timeout(self, msg: OutboundMessage) -> None:
        """Ack arrived: cancel the timeout instead of letting it fire dead."""
        timer = msg.sender_timer
        if timer is not None:
            timer.cancel()
            msg.sender_timer = None

    def _end_tx_span(self, msg: OutboundMessage, outcome: str) -> None:
        span = getattr(msg, "obs_span", None)
        if span is not None:
            self.loop.obs.tracer.end(span, outcome=outcome)

    # -- receive path --------------------------------------------------------------------

    def classify(self, packet: Packet):
        t = packet.transport
        c = self.costs
        obs = self.loop.obs
        if obs is not None:
            m = obs.metrics
            m.counter(f"{self.host.name}.homa.rx.packets").add()
            m.counter(f"{self.host.name}.homa.rx.{t.pkt_type.name.lower()}").add()
        if t.pkt_type == PacketType.DATA:
            # Softirq only queues packet buffers; the gather/copy into the
            # user message happens at recvmsg on the app thread (the paper's
            # full-message-then-copy receive, §5.1).
            per_byte = c.homa_rx_per_byte * len(packet.payload)
            cost = c.homa_rx_per_packet + per_byte
            merge_key = (id(self), packet.ip.src_addr, t.src_port, "data")
            merge_cost = c.homa_rx_merged_per_packet + per_byte
            return cost, (lambda: self._handle_data(packet)), merge_key, merge_cost
        if t.pkt_type == PacketType.GRANT:
            return c.homa_grant_rx, (lambda: self._handle_grant(packet)), None, 0.0
        if t.pkt_type == PacketType.RESEND:
            return c.homa_grant_rx, (lambda: self._handle_resend(packet)), None, 0.0
        if t.pkt_type == PacketType.ACK:
            return c.homa_grant_rx, (lambda: self._handle_ack(packet)), None, 0.0
        return 0.1e-6, (lambda: None), None, 0.0

    # .. data ..

    def _handle_data(self, packet: Packet) -> Optional[float]:
        t = packet.transport
        key = (packet.ip.src_addr, t.src_port, t.msg_id)
        if key in self._delivered:
            self.spurious_ignored += 1
            return None
        socket = self._sockets.get(t.dst_port)
        if socket is None:
            return None
        try:
            codec = socket.codec_for(packet.ip.src_addr, t.src_port)
        except ProtocolError:
            # Data raced ahead of session establishment: drop; the sender's
            # RESEND machinery retries once the session exists.
            self.spurious_ignored += 1
            return None
        inbound = self._inbound.get(key)
        extra = 0.0
        if inbound is None:
            # First packet of an unseen message: replay filter (paper §6.1:
            # replayed IDs are dropped without decryption).
            extra += self.costs.homa_rx_per_message + self.costs.smt_replay_check
            obs = self.loop.obs
            if not codec.accept_message(t.msg_id):
                self.replays_dropped += 1
                if obs is not None:
                    obs.metrics.counter(
                        f"{self.host.name}.homa.rx.replays_dropped"
                    ).add()
                return extra
            inbound = InboundMessage(
                msg_id=t.msg_id,
                peer_addr=packet.ip.src_addr,
                peer_port=t.src_port,
                local_port=t.dst_port,
                wire_len=t.msg_len,
                segment_capacity=codec.segment_capacity(self.host.nic.mtu_payload),
                mss=self.host.nic.mtu_payload,
                granted=min(t.msg_len, self.config.unscheduled_bytes),
                last_progress=self.loop.now,
            )
            self._inbound[key] = inbound
            if obs is not None:
                # Closed in _deliver, after reassembly completes.
                inbound.obs_span = obs.tracer.begin(
                    "homa.rx",
                    f"{self.host.name}.msg{t.msg_id}",
                    peer=packet.ip.src_addr,
                    bytes=t.msg_len,
                )
            if not inbound.complete:
                self._arm_resend_timer(key, inbound)
        if not packet.payload and t.msg_len:
            # A trimmed packet (NDP-style, paper §7): the payload was cut
            # at an overloaded switch but the plaintext transport metadata
            # tells us exactly what to re-request -- immediately, once.
            asm_state = inbound.segments.get(t.tso_offset)
            if (
                (asm_state is None or not asm_state.complete)
                and t.tso_offset not in inbound.trim_requested
            ):
                inbound.trim_requested.add(t.tso_offset)
                self.resend_requests += 1
                self._send_control(
                    inbound.peer_addr,
                    TransportHeader(
                        src_port=0,
                        dst_port=inbound.peer_port,
                        msg_id=inbound.msg_id,
                        pkt_type=PacketType.RESEND,
                        tso_offset=t.tso_offset,
                        msg_len=inbound.segment_length(t.tso_offset),
                        priority=self.config.control_priority,
                    ),
                )
                return (extra + self.costs.homa_grant_tx) or None
            return extra or None
        asm = inbound.assembler(t.tso_offset)
        was_complete = asm.complete
        if t.retransmit_offset:
            asm.add_explicit_packet(t.retransmit_offset - 1, packet.payload)
        else:
            asm.add_tso_packet(packet.ip.ipid, packet.payload)
        if asm.spurious:
            self.spurious_ignored += asm.spurious
            asm.spurious = 0
        if asm.complete and not was_complete:
            inbound.received_bytes += asm.seg_len
            inbound.last_progress = self.loop.now
        if inbound.complete and not inbound.delivered:
            inbound.delivered = True
            extra += self._deliver(key, inbound, socket)
        elif not inbound.complete:
            extra += self._maybe_grant(inbound)
        return extra or None

    def _deliver(self, key: tuple, inbound: InboundMessage, socket) -> float:
        wire = inbound.assemble()
        del self._inbound[key]
        timer = inbound.resend_timer
        if timer is not None:  # delivered: the RESEND timer has no work left
            timer.cancel()
            inbound.resend_timer = None
        self._delivered.add(key)
        if len(self._delivered) > 100_000:
            self._delivered.clear()  # bounded memory; late dupes hit codec filter
        self.messages_delivered += 1
        obs = self.loop.obs
        if obs is not None:
            obs.metrics.counter(f"{self.host.name}.homa.rx.messages").add()
            span = getattr(inbound, "obs_span", None)
            if span is not None:
                obs.tracer.end(span, resends=inbound.resends)
        cost = self.costs.homa_deliver_fixed + self.costs.homa_wake
        if inbound.msg_id & 1:
            # A response implicitly acknowledges its request (Homa's RPC
            # semantics): free our outbound request state now, and queue a
            # lazy batched ACK so the responder frees the response.
            request_key = (inbound.peer_addr, inbound.msg_id & ~1)
            freed = self._outbound.pop(request_key, None)
            if freed is not None:
                freed.acked = True
                self._cancel_sender_timeout(freed)
                self._encoded.pop(request_key, None)
                self._end_tx_span(freed, "implicit_ack")
            # Under corruption recovery the ACK must wait until the bytes
            # actually authenticate (it frees the responder's retransmit
            # state); the socket calls confirm_response() after decode.
            if not self.config.corruption_recovery:
                cost += self._queue_ack(inbound, socket)
        # Requests need no explicit ACK: the response implies it; sender
        # timeouts clean up one-way messages.
        socket.deliver(inbound, wire)
        return cost

    def _queue_ack(self, inbound: InboundMessage, socket) -> float:
        """Batch an ACK for a delivered response; flush per 8 or on timer."""
        batch = self._ack_batch.get(inbound.peer_addr)
        if batch is None:
            batch = (socket.port, inbound.peer_port, [inbound.msg_id])
            self._ack_batch[inbound.peer_addr] = batch
            self.loop.call_later(
                self.ack_flush_interval, self._flush_acks, inbound.peer_addr
            )
        else:
            batch[2].append(inbound.msg_id)
        if len(batch[2]) >= self.ack_batch_size:
            return self._flush_acks(inbound.peer_addr)
        return 0.0

    def _flush_acks(self, peer_addr: int) -> float:
        batch = self._ack_batch.pop(peer_addr, None)
        if batch is None:
            return 0.0
        local_port, peer_port, ids = batch
        payload = b"".join(i.to_bytes(8, "big") for i in ids)
        header = TransportHeader(
            src_port=local_port,
            dst_port=peer_port,
            msg_id=ids[0],
            pkt_type=PacketType.ACK,
            msg_len=len(ids),
            priority=self.config.control_priority,
        )
        nic = self.host.nic
        nic.post(
            0,
            TsoSegment(
                src_addr=self.host.addr,
                dst_addr=peer_addr,
                proto=self.proto,
                header=header,
                payload=payload,
                mss=nic.mtu_payload,
            ),
        )
        return self.costs.homa_grant_tx

    def _maybe_grant(self, inbound: InboundMessage) -> float:
        cfg = self.config
        if inbound.wire_len <= cfg.unscheduled_bytes:
            return 0.0
        outstanding = inbound.granted - inbound.received_bytes
        if outstanding > cfg.grant_window * cfg.grant_refill_fraction:
            return 0.0
        new_grant = min(inbound.wire_len, inbound.received_bytes + cfg.grant_window)
        if new_grant <= inbound.granted:
            return 0.0
        inbound.granted = new_grant
        self._send_control(
            inbound.peer_addr,
            TransportHeader(
                src_port=0,
                dst_port=inbound.peer_port,
                msg_id=inbound.msg_id,
                pkt_type=PacketType.GRANT,
                grant_offset=new_grant,
                priority=cfg.control_priority,
            ),
        )
        return self.costs.homa_grant_tx

    # .. grant ..

    def _handle_grant(self, packet: Packet) -> Optional[float]:
        t = packet.transport
        key = (packet.ip.src_addr, t.msg_id)
        msg = self._outbound.get(key)
        if msg is None:
            return None
        msg.last_activity = self.loop.now
        if t.grant_offset > msg.granted:
            msg.granted = min(t.grant_offset, msg.wire_len)
            encoded = self._encoded.get(key)
            if encoded is not None:
                # Granted data is pushed from softirq context (paper §3.2).
                return self._transmit_granted(msg, encoded) or None
        return None

    # .. resend ..

    def _arm_resend_timer(self, key: tuple, inbound: InboundMessage) -> None:
        # Deterministic per-message jitter: synchronized retry storms from
        # many senders would otherwise collide at the same switch buffer
        # forever (the simulation is deterministic, so symmetry never
        # breaks by chance).
        jitter = 1.0 + ((inbound.msg_id * 2654435761) % 64) / 128.0
        interval = self.config.resend_interval * jitter

        def next_interval() -> float:
            # Exponential backoff (resend_backoff > 1) bounded by the
            # configured ceiling -- but never below the base interval, so
            # the default backoff of 1.0 reproduces the fixed timer.
            grown = interval * self.config.resend_backoff ** min(inbound.resends, 16)
            return min(grown, max(interval, self.config.max_resend_interval))

        def check() -> None:
            inbound.resend_timer = None
            if inbound.delivered or self._inbound.get(key) is not inbound:
                return
            if self.loop.now - inbound.last_progress >= interval * 0.9:
                inbound.resends += 1
                if inbound.resends > self.config.max_resends:
                    del self._inbound[key]  # give up
                    return
                core = self.host.softirq_core_for_flow(
                    inbound.peer_addr, inbound.peer_port,
                    inbound.local_port, self.proto,
                )
                core.submit(self.costs.homa_grant_tx, lambda: self._request_resend(inbound))
            inbound.resend_timer = self.loop.timer_later(next_interval(), check)

        inbound.resend_timer = self.loop.timer_later(interval, check)

    def _request_resend(self, inbound: InboundMessage) -> None:
        self.resend_requests += 1
        # Allow trim notifications to fast-path again for the re-requested
        # segments (the previous retransmission may itself have been cut).
        inbound.trim_requested.clear()
        for offset, length in inbound.missing_ranges():
            self._send_control(
                inbound.peer_addr,
                TransportHeader(
                    src_port=0,
                    dst_port=inbound.peer_port,
                    msg_id=inbound.msg_id,
                    pkt_type=PacketType.RESEND,
                    tso_offset=offset,
                    msg_len=length,
                    priority=self.config.control_priority,
                ),
            )

    def retransmit_outbound(self, dest_addr: int, msg_id: int) -> float:
        """Resend every sent plan of an outbound message (RPC timeout).

        Covers the request-lost-entirely case: the receiver has no state,
        so only the sender can restart the exchange.  Retransmissions use
        explicit per-packet offsets -- duplicating rank-unknown TSO packets
        with fresh IPIDs would poison the receiver's IPID-rank inference.
        """
        key = (dest_addr, msg_id)
        msg = self._outbound.get(key)
        encoded = self._encoded.get(key)
        if msg is None or encoded is None:
            return 0.0
        cost = 0.0
        for plan in encoded.plans:
            if plan.sent:
                cost += self._retransmit_segment_explicit(msg, encoded, plan.tso_offset)
        return cost

    def _retransmit_segment_explicit(
        self, msg: OutboundMessage, encoded: EncodedMessage, tso_offset: int
    ) -> float:
        """Resend one segment as explicit-offset single packets."""
        codec = encoded.codec
        if codec is None:
            return 0.0
        try:
            wire = codec.reseal_range(encoded, tso_offset)
        except ProtocolError:
            return 0.0
        mss = self.host.nic.mtu_payload
        queue = encoded.nic_queue if encoded.nic_queue is not None else (
            (msg.msg_id >> 1) % self.host.nic.num_queues
        )
        obs = self.loop.obs
        cost = 0.0
        for off in range(0, len(wire), mss):
            chunk = wire[off : off + mss]
            self.packets_retransmitted += 1
            if obs is not None:
                obs.metrics.counter(
                    f"{self.host.name}.homa.tx.packets_retransmitted"
                ).add()
            header = TransportHeader(
                src_port=msg.src_port,
                dst_port=msg.dest_port,
                msg_id=msg.msg_id,
                pkt_type=PacketType.DATA,
                msg_len=msg.wire_len,
                tso_offset=tso_offset,
                retransmit_offset=off + 1,  # explicit in-segment byte offset
                priority=self.config.control_priority,
            )
            self.host.nic.post(
                queue,
                TsoSegment(
                    src_addr=self.host.addr,
                    dst_addr=msg.dest_addr,
                    proto=self.proto,
                    header=header,
                    payload=chunk,
                    mss=mss,
                ),
            )
            cost += self.costs.homa_tx_per_packet + self.costs.driver_tx_per_segment
        return cost

    def request_response_resend(self, dest_addr: int, dest_port: int, response_id: int) -> None:
        """Client-side RPC timeout: ask the server to resend a response.

        ``msg_len == 0`` in a RESEND means "the whole message" -- used when
        the requester has no inbound state at all (every packet lost).
        """
        self.resend_requests += 1
        self._send_control(
            dest_addr,
            TransportHeader(
                src_port=0,
                dst_port=dest_port,
                msg_id=response_id,
                pkt_type=PacketType.RESEND,
                tso_offset=0,
                msg_len=0,
                priority=self.config.control_priority,
            ),
        )

    # .. corruption recovery ..

    def recover_inbound(self, inbound) -> None:
        """Un-deliver a message whose reassembled bytes failed to decode.

        Called by the socket layer (app-thread context) when AEAD
        verification rejects a delivered message: wire corruption slipped
        past the (checksum-free, §7) transport.  The delivered-ID table
        entry is removed and the codec's replay filter forgives the ID so
        the sender's retransmission -- byte-identical ciphertext: same
        key, same nonces -- can be reassembled and delivered afresh.
        """
        key = (inbound.peer_addr, inbound.peer_port, inbound.msg_id)
        self._delivered.discard(key)
        socket = self._sockets.get(inbound.local_port)
        if socket is not None:
            codec = socket.codec_for(inbound.peer_addr, inbound.peer_port)
            forgive = getattr(codec, "forgive_message", None)
            if forgive is not None:
                forgive(inbound.msg_id)
        self.corrupt_recoveries += 1
        self.resend_requests += 1
        obs = self.loop.obs
        if obs is not None:
            obs.metrics.counter(f"{self.host.name}.homa.rx.corrupt_recoveries").add()
        # Whole-message RESEND (msg_len == 0): any packet of the original
        # delivery may have carried the flipped bits.
        self._send_control(
            inbound.peer_addr,
            TransportHeader(
                src_port=0,
                dst_port=inbound.peer_port,
                msg_id=inbound.msg_id,
                pkt_type=PacketType.RESEND,
                tso_offset=0,
                msg_len=0,
                priority=self.config.control_priority,
            ),
        )

    def confirm_response(self, inbound, socket) -> float:
        """ACK a response whose decode succeeded (corruption-recovery mode).

        In that mode :meth:`_deliver` defers the lazy ACK so the responder
        keeps its retransmit state until the bytes authenticate.
        """
        return self._queue_ack(inbound, socket)

    def _handle_resend(self, packet: Packet) -> Optional[float]:
        """Sender side: retransmit one segment as explicit-offset packets."""
        t = packet.transport
        key = (packet.ip.src_addr, t.msg_id)
        msg = self._outbound.get(key)
        encoded = self._encoded.get(key)
        if msg is None or encoded is None:
            return None
        if t.msg_len == 0:
            # Whole-message resend: every granted segment, explicit offsets.
            cost = 0.0
            for plan in encoded.plans:
                if plan.tso_offset < msg.granted:
                    cost += self._retransmit_segment_explicit(
                        msg, encoded, plan.tso_offset
                    )
            return cost or None
        return self._retransmit_segment_explicit(msg, encoded, t.tso_offset) or None

    def _socket_codec_for(self, msg: OutboundMessage) -> MessageCodec:
        socket = self._sockets.get(msg.src_port)
        if socket is None:
            raise ProtocolError(f"no socket on port {msg.src_port}")
        return socket.codec_for(msg.dest_addr, msg.dest_port)

    # .. ack ..

    def _handle_ack(self, packet: Packet) -> Optional[float]:
        if packet.payload:
            ids = [
                int.from_bytes(packet.payload[i : i + 8], "big")
                for i in range(0, len(packet.payload), 8)
            ]
        else:
            ids = [packet.transport.msg_id]
        for msg_id in ids:
            key = (packet.ip.src_addr, msg_id)
            msg = self._outbound.pop(key, None)
            if msg is not None:
                msg.acked = True
                self._cancel_sender_timeout(msg)
                self._encoded.pop(key, None)
                self._end_tx_span(msg, "acked")
        return None
