"""Heartbeat-driven failure detection on the virtual clock.

A monitor samples a boolean ``probe()`` every ``interval`` seconds; after
``miss_threshold`` consecutive misses the target is declared down and
``on_down`` fires, and the first successful probe afterwards declares it
up again via ``on_up``.  Because probes are strictly periodic, detection
latency is *bounded*: a target that dies at time ``t`` is declared down
no later than ``t + interval * miss_threshold`` (first failing probe
within one interval, then ``miss_threshold - 1`` more) -- the bound the
property tests assert for every seed, and the bound the incident bench's
detection-time band is checked against.

The probe is an oracle function rather than a network RPC on purpose:
the routing plane's liveness detection (BFD-style hellos) runs on
dedicated queues that do not share fate with data-plane congestion, so
modelling it as state sampling is faithful *and* keeps the monitor from
perturbing the workload under test.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError


class HeartbeatMonitor:
    """Periodic liveness probing with a consecutive-miss threshold."""

    def __init__(
        self,
        loop,
        probe: Callable[[], bool],
        interval: float,
        miss_threshold: int = 3,
        on_down: Optional[Callable[[], None]] = None,
        on_up: Optional[Callable[[], None]] = None,
        name: str = "",
    ):
        if interval <= 0:
            raise SimulationError(f"heartbeat interval must be > 0, got {interval}")
        if miss_threshold < 1:
            raise SimulationError(
                f"miss threshold must be >= 1, got {miss_threshold}"
            )
        self.loop = loop
        self.probe = probe
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.on_down = on_down
        self.on_up = on_up
        self.name = name
        self.up = True
        self.misses = 0
        self.probes = 0
        #: (virtual_time, "down" | "up") for every declaration.
        self.declarations: list[tuple[float, str]] = []
        self._last_up_at: Optional[float] = None
        self._periodic = None

    @property
    def detection_bound(self) -> float:
        """Worst-case seconds from death to the ``down`` declaration."""
        return self.interval * self.miss_threshold

    def down_since(self, t: float) -> bool:
        """Was the target declared down at any instant since time ``t``?

        Consumers use this to classify a failed attempt that *started* at
        ``t``: if the target spent part of the attempt window declared
        down, the failure is explained by the (already detected) outage
        and says nothing about the target's health *now* -- so it should
        not feed a circuit breaker, whose job is the silent failures
        heartbeats cannot see.
        """
        if not self.up:
            return True
        return self._last_up_at is not None and self._last_up_at >= t

    def start(self) -> "HeartbeatMonitor":
        """Arm the periodic probe; returns ``self`` for chaining."""
        if self._periodic is None:
            self._periodic = self.loop.every(self.interval, self._tick)
        return self

    def stop(self) -> None:
        if self._periodic is not None:
            self._periodic.cancel()
            self._periodic = None

    def _tick(self) -> None:
        self.probes += 1
        if self.probe():
            self.misses = 0
            if not self.up:
                self.up = True
                self._last_up_at = self.loop.now
                self.declarations.append((self.loop.now, "up"))
                if self.on_up is not None:
                    self.on_up()
            return
        self.misses += 1
        if self.up and self.misses >= self.miss_threshold:
            self.up = False
            self.declarations.append((self.loop.now, "down"))
            if self.on_down is not None:
                self.on_down()
