"""Client-side resilience kit for datacenter incidents.

The paper's transport fails *closed* (a session that cannot authenticate
dies with :class:`~repro.errors.SessionFailedError`); what a datacenter
client does next is an application-layer policy.  This package provides
the standard kit -- retry budgets with exponential backoff and
deterministic jitter (:mod:`repro.resilience.retry`), per-destination
circuit breakers (:mod:`repro.resilience.breaker`), heartbeat-driven
failure detection (:mod:`repro.resilience.heartbeat`), and a composed
:class:`~repro.resilience.kit.ResilienceKit` that wraps any RPC
generator with fail-fast and fallback hooks.  After a replica crash,
:class:`~repro.resilience.handshake.SessionReestablisher` replays the
paper's §4.5 handshake economics (pool draws, admission backpressure,
Table 2 keygen terms) for the re-connection storm.

Everything runs on the virtual clock with caller-supplied seeds, so an
incident run replays identically -- including every jittered backoff.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.handshake import SessionReestablisher
from repro.resilience.heartbeat import HeartbeatMonitor
from repro.resilience.kit import KitConfig, ResilienceKit
from repro.resilience.retry import BackoffPolicy, RetryBudget

__all__ = [
    "BackoffPolicy",
    "BreakerState",
    "CircuitBreaker",
    "HeartbeatMonitor",
    "KitConfig",
    "ResilienceKit",
    "RetryBudget",
    "SessionReestablisher",
]
