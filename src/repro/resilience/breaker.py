"""Per-destination circuit breaker (closed -> open -> half-open).

When a destination fails repeatedly, continuing to call it burns client
CPU, fabric capacity and -- for an encrypted transport -- handshake
admission slots on an already-struggling server.  The breaker trips
after ``failure_threshold`` *consecutive* failures, refuses calls for
``recovery_timeout`` seconds of virtual time, then lets a bounded number
of probes through (half-open); one success closes it, one failure
re-opens it with a fresh timeout.  All transitions are driven by
``loop.now``, so a fixed trace of successes/failures replays the exact
state machine -- the property the randomized-trace tests pin down.
"""

from __future__ import annotations

import enum

from repro.errors import SimulationError


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker on the virtual clock."""

    def __init__(
        self,
        loop,
        failure_threshold: int = 5,
        recovery_timeout: float = 200e-6,
        half_open_max_probes: int = 1,
        name: str = "",
    ):
        if failure_threshold < 1:
            raise SimulationError(
                f"failure threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_timeout <= 0:
            raise SimulationError(
                f"recovery timeout must be > 0, got {recovery_timeout}"
            )
        if half_open_max_probes < 1:
            raise SimulationError(
                f"half-open probe allowance must be >= 1, got {half_open_max_probes}"
            )
        self.loop = loop
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.half_open_max_probes = half_open_max_probes
        self.name = name
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        #: (virtual_time, from_state, to_state) for every transition.
        self.transitions: list[tuple[float, BreakerState, BreakerState]] = []
        self.rejected = 0
        self.trips = 0

    @property
    def state(self) -> BreakerState:
        """Current state, *after* lazily applying the recovery timeout."""
        self._maybe_half_open()
        return self._state

    def _transition(self, to: BreakerState) -> None:
        self.transitions.append((self.loop.now, self._state, to))
        self._state = to

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self.loop.now >= self._opened_at + self.recovery_timeout
        ):
            self._transition(BreakerState.HALF_OPEN)
            self._probes_inflight = 0

    def allow(self) -> bool:
        """May a call proceed right now?  Half-open admits bounded probes."""
        self._maybe_half_open()
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.HALF_OPEN:
            if self._probes_inflight < self.half_open_max_probes:
                self._probes_inflight += 1
                return True
            self.rejected += 1
            return False
        self.rejected += 1
        return False

    def record_success(self) -> None:
        """The attempted call succeeded."""
        self._maybe_half_open()
        self._consecutive_failures = 0
        if self._state is BreakerState.HALF_OPEN:
            self._probes_inflight = 0
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """The attempted call failed (timeout, transport error...)."""
        self._maybe_half_open()
        if self._state is BreakerState.HALF_OPEN:
            # The probe failed: straight back to open, fresh timeout.
            self._probes_inflight = 0
            self._opened_at = self.loop.now
            self.trips += 1
            self._transition(BreakerState.OPEN)
            return
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._opened_at = self.loop.now
            self.trips += 1
            self._transition(BreakerState.OPEN)

    def remaining_open_time(self) -> float:
        """Seconds until an open breaker would admit a probe (0 otherwise)."""
        self._maybe_half_open()
        if self._state is not BreakerState.OPEN:
            return 0.0
        return max(0.0, self._opened_at + self.recovery_timeout - self.loop.now)
