"""Retry budgets and exponential backoff with deterministic jitter.

Unbounded retries turn a partial outage into a total one: every client
multiplying its offered load by the retry count is the classic metastable
failure.  :class:`RetryBudget` is the standard defence -- a token bucket
where retries spend and successes refund a small fraction, so steady
state affords occasional retries but a dead destination drains the
bucket and further retries are denied.  :class:`BackoffPolicy` spaces
the retries that are granted: exponential growth, a hard cap, and
*seeded* jitter so concurrent clients decorrelate without breaking
replay.
"""

from __future__ import annotations

import random

from repro.errors import SimulationError


class RetryBudget:
    """Token bucket bounding retries relative to successes.

    Invariant (property-tested): the token level never exceeds
    ``capacity`` and never drops below zero, for *any* interleaving of
    spends and refunds.  First attempts are free -- only retries spend.
    """

    def __init__(
        self,
        capacity: float = 32.0,
        refund: float = 0.1,
        initial: float | None = None,
    ):
        if capacity <= 0:
            raise SimulationError(f"retry budget capacity must be > 0, got {capacity}")
        if refund < 0:
            raise SimulationError(f"retry refund must be >= 0, got {refund}")
        self.capacity = float(capacity)
        self.refund = float(refund)
        self.tokens = self.capacity if initial is None else min(float(initial), self.capacity)
        if self.tokens < 0:
            raise SimulationError("initial tokens must be >= 0")
        self.spent = 0
        self.denied = 0
        self.refunded = 0.0

    def try_spend(self) -> bool:
        """Take one token for a retry; False means the retry is denied."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False

    def on_success(self) -> None:
        """A call succeeded: refund a fraction of a token (capped)."""
        credit = min(self.refund, self.capacity - self.tokens)
        self.tokens += credit
        self.refunded += credit


class BackoffPolicy:
    """Exponential backoff, capped, with seeded proportional jitter.

    ``delay(attempt)`` for attempt ``0, 1, 2, ...`` grows as ``base *
    multiplier**attempt`` up to ``cap``, then multiplies by a jitter
    factor drawn uniformly from ``[1 - jitter, 1 + jitter]`` using the
    policy's own :class:`random.Random` -- deterministic per seed, and
    never pushing the delay above ``cap * (1 + jitter)`` or below zero.
    """

    def __init__(
        self,
        base: float = 20e-6,
        multiplier: float = 2.0,
        cap: float = 400e-6,
        jitter: float = 0.2,
        seed: int = 0,
    ):
        if base <= 0 or cap < base:
            raise SimulationError(f"need 0 < base <= cap, got base={base} cap={cap}")
        if multiplier < 1.0:
            raise SimulationError(f"backoff multiplier must be >= 1, got {multiplier}")
        if not 0 <= jitter < 1:
            raise SimulationError(f"jitter fraction must be in [0, 1), got {jitter}")
        self.base = base
        self.multiplier = multiplier
        self.cap = cap
        self.jitter = jitter
        self.rng = random.Random(seed * 0x9E3779B9 + 7)

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        raw = min(self.base * self.multiplier ** min(attempt, 32), self.cap)
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        return raw
