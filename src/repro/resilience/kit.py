"""The composed resilience kit wrapping RPC calls.

:class:`ResilienceKit` glues the pieces together for a client: each call
runs with a per-attempt deadline, failures consult the per-destination
:class:`~repro.resilience.breaker.CircuitBreaker` and the global
:class:`~repro.resilience.retry.RetryBudget`, granted retries are spaced
by a seeded :class:`~repro.resilience.retry.BackoffPolicy`, and optional
:class:`~repro.resilience.heartbeat.HeartbeatMonitor` watchers fail calls
fast while a destination is declared down.  Exhausted or fail-fast calls
either raise (:class:`~repro.errors.CircuitOpenError` /
:class:`~repro.errors.TransportError`) or divert to a caller-supplied
fallback -- the fail-fast/fallback hooks the incident experiments wire
onto the SMT socket.

The kit is deliberately transport-agnostic: ``attempt`` is any generator
factory ``attempt(timeout) -> response``, so the same kit fronts a Homa
socket, an SMT socket or the cluster harness mesh.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.errors import (
    CircuitOpenError,
    SessionFailedError,
    TransportError,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.heartbeat import HeartbeatMonitor
from repro.resilience.retry import BackoffPolicy, RetryBudget

#: Failures the kit treats as retryable transport trouble.
RETRYABLE = (TransportError, SessionFailedError)


@dataclass
class KitConfig:
    """Knobs for one client's resilience kit.

    The defaults are sized for the simulated fabric's timescales (RTTs
    of a few microseconds, incidents of a few hundred): a 60us attempt
    deadline is ~10x the loaded p50 RTT, and the breaker's recovery
    timeout is in the order of the fabric's re-convergence delay.
    """

    attempt_timeout: float = 60e-6
    max_attempts: int = 8
    #: Per-attempt deadline growth: attempt ``n`` (0-based) runs with
    #: ``attempt_timeout * timeout_growth ** min(n, 3)``.  A flat deadline
    #: false-fires exactly when the system is digesting a recovery
    #: backlog, and every false expiry *adds* a duplicate RPC to that
    #: backlog -- growing deadlines absorb the post-recovery mess instead
    #: of amplifying it.
    timeout_growth: float = 2.0
    backoff_base: float = 15e-6
    backoff_multiplier: float = 2.0
    backoff_cap: float = 120e-6
    backoff_jitter: float = 0.2
    budget_capacity: float = 64.0
    budget_refund: float = 0.2
    breaker_failure_threshold: int = 6
    breaker_recovery_timeout: float = 150e-6
    breaker_half_open_probes: int = 2
    heartbeat_interval: float = 25e-6
    heartbeat_miss_threshold: int = 3
    #: Longest a ``wait`` call parks for recovery before giving up.
    max_recovery_wait: float = 5e-3
    #: When a detected outage clears, every blocked call wants to fire in
    #: the same instant -- a thundering herd that saturates the revived
    #: target and blows per-attempt deadlines all over again.  Calls that
    #: parked (or whose failure overlapped the outage) therefore delay
    #: their first post-recovery attempt by a uniform random splay in
    #: ``[0, recovery_splay)``.  Zero disables the splay.
    recovery_splay: float = 100e-6


class ResilienceKit:
    """Retry budget + breakers + failure detection for one client."""

    def __init__(self, loop, config: Optional[KitConfig] = None, seed: int = 0):
        self.loop = loop
        self.config = cfg = config or KitConfig()
        self.budget = RetryBudget(cfg.budget_capacity, cfg.budget_refund)
        self.backoff = BackoffPolicy(
            base=cfg.backoff_base,
            multiplier=cfg.backoff_multiplier,
            cap=cfg.backoff_cap,
            jitter=cfg.backoff_jitter,
            seed=seed,
        )
        self._breakers: dict[Any, CircuitBreaker] = {}
        self._monitors: dict[Any, HeartbeatMonitor] = {}
        self._rng = random.Random(seed * 65537 + 3)
        self.calls = 0
        self.retries = 0
        self.fail_fast = 0
        self.parked = 0
        self.splayed = 0
        self.fallbacks = 0
        self.exhausted = 0
        self.successes = 0

    # -- per-destination components --------------------------------------------

    def breaker_for(self, dst) -> CircuitBreaker:
        breaker = self._breakers.get(dst)
        if breaker is None:
            cfg = self.config
            breaker = CircuitBreaker(
                self.loop,
                failure_threshold=cfg.breaker_failure_threshold,
                recovery_timeout=cfg.breaker_recovery_timeout,
                half_open_max_probes=cfg.breaker_half_open_probes,
                name=f"breaker.{dst}",
            )
            self._breakers[dst] = breaker
        return breaker

    def watch(self, dst, probe: Callable[[], bool]) -> HeartbeatMonitor:
        """Install heartbeat failure detection for ``dst`` (idempotent)."""
        monitor = self._monitors.get(dst)
        if monitor is None:
            cfg = self.config
            monitor = HeartbeatMonitor(
                self.loop,
                probe,
                interval=cfg.heartbeat_interval,
                miss_threshold=cfg.heartbeat_miss_threshold,
                name=f"hb.{dst}",
            ).start()
            self._monitors[dst] = monitor
        return monitor

    def destination_up(self, dst) -> bool:
        """Last heartbeat verdict for ``dst`` (True when unwatched)."""
        monitor = self._monitors.get(dst)
        return True if monitor is None else monitor.up

    def _outage_since(self, started: float, *keys) -> bool:
        """Was any watched party declared down since ``started``?

        A failed attempt that overlapped a *detected* outage -- of the
        destination or of the caller's own host -- is explained by that
        outage: it carries no information about health right now, so it
        must not feed the breaker.  Breakers exist for the silent
        failures heartbeats cannot see; letting outage-straddling
        deadline expiries trip them opens the circuit exactly when the
        network has just healed.
        """
        for key in keys:
            if key is None:
                continue
            monitor = self._monitors.get(key)
            if monitor is not None and monitor.down_since(started):
                return True
        return False

    def stop(self) -> None:
        """Cancel every heartbeat monitor (teardown)."""
        for monitor in self._monitors.values():
            monitor.stop()

    # -- the call wrapper -------------------------------------------------------

    def call(
        self,
        attempt: Callable[[float], Generator[Any, Any, Any]],
        dst,
        fallback: Optional[Callable[[BaseException], Any]] = None,
        on_open: str = "raise",
        timeout: Optional[float] = None,
        caller=None,
    ) -> Generator[Any, Any, Any]:
        """Run ``attempt(timeout)`` with the full kit around it.

        ``timeout`` overrides the config's per-attempt deadline for this
        call -- callers with size-dependent expected RTTs (a 128 KB
        message legitimately takes longer than a 256 B one) scale the
        deadline instead of tolerating false timeouts on big messages.

        ``caller`` scopes the breaker: when a kit fronts many senders
        (the cluster mesh), a sender whose *own* uplink is dead fails
        every call, and without scoping those failures would trip the
        shared breaker of every healthy destination.  Heartbeat verdicts
        stay per-destination -- liveness is a property of the target --
        but if the *caller* is itself a watched host, its own ``down``
        verdict parks the call just like the destination's would, and
        failures that overlapped a detected outage of either party are
        not counted against the breaker (see :meth:`_outage_since`).

        ``on_open`` chooses the fail-fast behaviour when the breaker or
        the heartbeat verdict refuses the call: ``"raise"`` surfaces
        :class:`CircuitOpenError` immediately (or diverts to
        ``fallback``), ``"wait"`` parks until the destination looks
        callable again -- bounded by ``max_recovery_wait``, after which
        it raises/falls back anyway.  Retryable failures are
        :data:`RETRYABLE`; anything else propagates untouched (an
        authentication failure is not cured by retrying).
        """
        if on_open not in ("raise", "wait"):
            raise ValueError(f"on_open must be 'raise' or 'wait', got {on_open!r}")
        self.calls += 1
        cfg = self.config
        deadline = cfg.attempt_timeout if timeout is None else timeout
        breaker = self.breaker_for(dst if caller is None else (caller, dst))
        attempts = 0
        splayed = False
        while True:
            waited = 0.0
            outage_park = False
            # A sender whose own host is declared down parks too: every
            # attempt it made would burn a deadline against a healthy
            # destination and pollute the breaker with failures that are
            # really its own outage.
            while not (
                self.destination_up(dst)
                and (caller is None or self.destination_up(caller))
                and breaker.allow()
            ):
                if on_open != "wait" or waited >= cfg.max_recovery_wait:
                    self.fail_fast += 1
                    exc = CircuitOpenError(
                        f"destination {dst} refused fail-fast "
                        f"(breaker {breaker.state.value}, "
                        f"up={self.destination_up(dst)})"
                    )
                    if fallback is not None:
                        self.fallbacks += 1
                        return fallback(exc)
                    raise exc
                # Park until the breaker's timeout or the next heartbeat
                # could change the verdict; jittered so a thundering herd
                # of parked callers staggers its re-checks.
                pause = max(
                    breaker.remaining_open_time(), cfg.heartbeat_interval
                ) * (1.0 + 0.1 * self._rng.random())
                pause = min(pause, cfg.max_recovery_wait - waited)
                waited += pause
                self.parked += 1
                if not (
                    self.destination_up(dst)
                    and (caller is None or self.destination_up(caller))
                ):
                    outage_park = True
                yield self.loop.timeout(pause)
            if outage_park and not splayed and cfg.recovery_splay > 0:
                # The outage just cleared and every parked call saw the
                # same ``up`` verdict: splay the stampede.
                splayed = True
                self.splayed += 1
                yield self.loop.timeout(self._rng.random() * cfg.recovery_splay)
            started = self.loop.now
            try:
                result = yield from attempt(
                    deadline * cfg.timeout_growth ** min(attempts, 3)
                )
            except RETRYABLE as exc:
                stale = self._outage_since(started, dst, caller)
                if not stale:
                    breaker.record_failure()
                attempts += 1
                if attempts >= cfg.max_attempts:
                    self.exhausted += 1
                    if fallback is not None:
                        self.fallbacks += 1
                        return fallback(exc)
                    raise
                if not self.budget.try_spend():
                    self.exhausted += 1
                    budget_exc = TransportError(
                        f"retry budget exhausted calling {dst}: {exc}"
                    )
                    if fallback is not None:
                        self.fallbacks += 1
                        return fallback(budget_exc)
                    raise budget_exc from exc
                self.retries += 1
                if stale and not splayed and cfg.recovery_splay > 0:
                    # The attempt's deadline straddled a detected outage,
                    # so the whole herd is about to retry at once: splay
                    # this retry instead of the usual tight backoff.
                    splayed = True
                    self.splayed += 1
                    yield self.loop.timeout(
                        self._rng.random() * cfg.recovery_splay
                    )
                else:
                    yield self.loop.timeout(self.backoff.delay(attempts - 1))
                continue
            breaker.record_success()
            if attempts:
                self.budget.on_success()
            self.successes += 1
            return result
