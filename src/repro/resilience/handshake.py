"""Post-crash session re-establishment against the control plane.

When a replica crashes, every client that held a secure session to it
must re-handshake after the revival -- all at once.  That storm is
exactly the load the paper's §4.5 machinery exists to absorb: standby
key pools hide the Table 2 keygen terms (C1.1 = 61.3us client, S2.1 =
67.9us server), and the bounded session table applies admission
backpressure when the storm outruns capacity.  A crashed replica makes
it worse than steady-state churn: its pools restart *empty*
(:meth:`~repro.ctrl.plane.ControlPlane.restart`), so early re-handshakes
miss the pool and pay keygen inline.

:class:`SessionReestablisher` replays those economics without dragging
the full TLS state machine across the cluster mesh: it asks the server
plane for admission (retrying with backoff on refusal -- counted there
as ``admission_refused``), draws one keypair from each side's pool
(misses generate inline at Table 2 cost, charged to the calling app
thread), spends one network round trip, and registers the session in the
server's table.  The incident bench reads the planes' counters
afterwards as the "handshake-storm load on the control plane" metric.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import TransportError
from repro.resilience.retry import BackoffPolicy
from repro.units import USEC

#: Table 2 keygen terms (paper §5.1): charged inline on a pool miss.
CLIENT_KEYGEN = 61.3 * USEC  # C1.1
SERVER_KEYGEN = 67.9 * USEC  # S2.1
#: Non-keygen handshake CPU per side (Table 2 remainder, rounded): the
#: part pools cannot remove -- key derivation, transcript hashing, AEAD
#: of the flight.  Kept deliberately small and symmetric.
HANDSHAKE_CPU = 12.0 * USEC


class SessionReestablisher:
    """Drives one client's re-handshakes against a revived replica."""

    def __init__(
        self,
        loop,
        rtt: float = 10e-6,
        max_admission_retries: int = 64,
        backoff: Optional[BackoffPolicy] = None,
        seed: int = 0,
    ):
        self.loop = loop
        self.rtt = rtt
        self.max_admission_retries = max_admission_retries
        self.backoff = backoff or BackoffPolicy(
            base=20e-6, cap=200e-6, jitter=0.3, seed=seed
        )
        self.completed = 0
        self.admission_retries = 0
        self.client_inline_keygens = 0
        self.server_inline_keygens = 0
        #: Wall (virtual) time each re-handshake took, storm analysis.
        self.durations: list[float] = []

    def reestablish(
        self,
        thread,
        client_plane,
        server_plane,
        key: tuple,
    ) -> Generator[Any, Any, float]:
        """One re-handshake; returns its virtual-time duration.

        ``key`` identifies the session in the server's table (any
        hashable -- the incident engine uses ``(client_addr,
        server_addr)``).  Raises :class:`TransportError` if the server
        refuses admission ``max_admission_retries`` times.
        """
        started = self.loop.now
        refusals = 0
        while not server_plane.admit_handshake():
            refusals += 1
            self.admission_retries += 1
            if refusals > self.max_admission_retries:
                raise TransportError(
                    f"handshake admission refused {refusals} times by "
                    f"{server_plane.name}"
                )
            # An admission refusal is learned after a round trip, then the
            # client backs off before re-flighting.
            yield self.loop.timeout(self.rtt + self.backoff.delay(refusals - 1))
        client_key, client_pooled = client_plane.take_ecdh()
        cost = HANDSHAKE_CPU
        if not client_pooled:
            cost += CLIENT_KEYGEN
            self.client_inline_keygens += 1
        server_key, server_pooled = server_plane.take_ecdh()
        # Server-side CPU is charged to the client's thread as a stand-in:
        # the virtual-time shape (storm serialised behind keygen) is what
        # the experiment measures, not per-core attribution.
        cost += HANDSHAKE_CPU
        if not server_pooled:
            cost += SERVER_KEYGEN
            self.server_inline_keygens += 1
        yield from thread.work(cost)
        yield self.loop.timeout(self.rtt)
        server_plane.table.insert(
            key,
            on_evict=lambda: None,
            busy=lambda: False,
            now=self.loop.now,
        )
        duration = self.loop.now - started
        self.durations.append(duration)
        self.completed += 1
        return duration
