"""Figure 11: effect of TSO (full / two-packet / off)."""

from repro.bench import fig11

from conftest import run_report


def test_fig11_tso_effect(benchmark):
    run_report(benchmark, fig11.run)
