"""Figure 5: composite sequence number bit-allocation trade-off."""

from repro.bench import fig5

from conftest import run_report


def test_fig5_bit_allocation(benchmark):
    run_report(benchmark, fig5.run)
