"""Figure 9: NVMe-oF P50/P99 latency over iodepth."""

from repro.bench import fig9

from conftest import run_report


def test_fig9_nvmeof_latency(benchmark):
    run_report(benchmark, fig9.run, min_fraction=0.7, duration=5e-3)
