"""Figure 6: unloaded RTT of various-sized RPCs across all systems."""

from repro.bench import fig6

from conftest import run_report


def test_fig6_unloaded_rtt(benchmark):
    run_report(benchmark, fig6.run, min_fraction=0.9)
