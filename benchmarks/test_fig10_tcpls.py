"""Figure 10: TCPLS comparison."""

from repro.bench import fig10

from conftest import run_report


def test_fig10_tcpls(benchmark):
    run_report(benchmark, fig10.run, min_fraction=0.9)
