"""Table 1: the design-space property matrix."""

from repro.bench import table1

from conftest import run_report


def test_table1_design_space(benchmark):
    run_report(benchmark, table1.run)
