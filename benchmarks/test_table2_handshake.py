"""Table 2: TLS 1.3 handshake latency breakdown (ECDSA and RSA columns)."""

from repro.bench import table2

from conftest import run_report


def test_table2_handshake_breakdown(benchmark):
    run_report(benchmark, table2.run)
