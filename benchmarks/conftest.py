"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper, prints the
reproduced rows (run pytest with ``-s`` to see them) and asserts the
paper-band checks recorded in EXPERIMENTS.md.  Wall time measured by
pytest-benchmark is the *simulation* cost; the reproduced numbers are
virtual-time results inside the report.
"""

import os
import sys

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def run_report(benchmark, fn, *args, min_fraction: float = 1.0, **kwargs):
    """Run a bench module's run() under pytest-benchmark and check bands."""
    report = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(report.render())
    fraction = report.fraction_in_band()
    assert fraction >= min_fraction, (
        f"{report.title}: only {fraction:.0%} of paper-band checks passed:\n"
        + "\n".join(c.describe() for c in report.misses)
    )
    return report
