"""Ablation: lazy batched ACKs vs per-message ACKs."""

from repro.bench import ablations

from conftest import run_report


def test_ack_batching(benchmark):
    run_report(benchmark, ablations.run_ack_batching_ablation)
