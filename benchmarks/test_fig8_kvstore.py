"""Figure 8: key-value store YCSB throughput."""

from repro.bench import fig8

from conftest import run_report


def test_fig8_kvstore_ycsb(benchmark):
    run_report(benchmark, fig8.run, min_fraction=0.7, duration=2.0e-3)
