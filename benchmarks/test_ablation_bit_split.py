"""Ablation: composite seqno bit split enforced end to end."""

from repro.bench import ablations

from conftest import run_report


def test_bit_split(benchmark):
    run_report(benchmark, ablations.run_bit_split_ablation)
