"""Ablation: per-queue flow contexts + resync vs per-message contexts."""

from repro.bench import ablations

from conftest import run_report


def test_flow_context_policy(benchmark):
    run_report(benchmark, ablations.run_flow_context_ablation)
