"""Figure 12: key-exchange latency across handshake variants."""

from repro.bench import fig12

from conftest import run_report


def test_fig12_key_exchange(benchmark):
    run_report(benchmark, fig12.run)
