"""Figure 7: concurrent RPC throughput, plus the in-text variants."""

from repro.bench import fig7

from conftest import run_report


def test_fig7_throughput(benchmark):
    run_report(benchmark, fig7.run, min_fraction=0.85, duration=2.5e-3)


def test_fig7_jumbo_mtu(benchmark):
    run_report(benchmark, fig7.run_mtu_comparison, min_fraction=0.5, duration=2.5e-3)


def test_fig7_cpu_usage(benchmark):
    run_report(benchmark, fig7.run_cpu_usage, min_fraction=0.75)
