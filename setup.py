"""Setup shim for environments without PEP 517 build isolation.

``pip install -e .`` in the offline benchmark container has no access to
the ``wheel`` package, so the legacy ``setup.py develop`` path is kept
working; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
