"""kTLS tests: software and NIC-offloaded record protection over TCP."""

import pytest

from repro.errors import AuthenticationError, CryptoError
from repro.ktls import KtlsConnection, ktls_pair
from repro.net.headers import PacketType
from repro.tcp import connect_pair
from repro.testbed import Testbed
from repro.tls.keyschedule import TrafficKeys


def make_bed(mode, **kwargs):
    bed = Testbed.back_to_back()
    conn_c, conn_s = connect_pair(bed.client, bed.server, 5000, **kwargs)
    c, s = ktls_pair(conn_c, conn_s, mode)
    return bed, c, s


def run_echo(bed, c, s, size, count=1):
    results = {"echoes": []}

    def server():
        t = bed.server.app_thread(0)
        for _ in range(count):
            data = b""
            while len(data) < size:
                data += yield from s.recv(t)
            yield from s.send(t, data)

    def client():
        t = bed.client.app_thread(0)
        for i in range(count):
            yield from c.send(t, bytes([i & 0xFF]) * size)
            data = b""
            while len(data) < size:
                data += yield from c.recv(t)
            results["echoes"].append(data)

    bed.loop.process(server())
    done = bed.loop.process(client())
    bed.loop.run(until=5.0)
    assert done.triggered, "deadlock"
    if not done.ok:
        raise done.value
    return results


class TestModes:
    @pytest.mark.parametrize("mode", [None, "sw", "hw"])
    def test_echo_small(self, mode):
        bed, c, s = make_bed(mode)
        results = run_echo(bed, c, s, 64)
        assert results["echoes"][0] == b"\x00" * 64

    @pytest.mark.parametrize("mode", [None, "sw", "hw"])
    def test_echo_multi_record(self, mode):
        # > 16 KB: spans multiple TLS records.
        bed, c, s = make_bed(mode)
        results = run_echo(bed, c, s, 40_000)
        assert results["echoes"][0] == b"\x00" * 40_000

    @pytest.mark.parametrize("mode", [None, "sw", "hw"])
    def test_echo_sequence(self, mode):
        bed, c, s = make_bed(mode)
        results = run_echo(bed, c, s, 1024, count=5)
        assert [e[0] for e in results["echoes"]] == [0, 1, 2, 3, 4]

    def test_unknown_mode_rejected(self):
        bed = Testbed.back_to_back()
        conn, _ = connect_pair(bed.client, bed.server, 5000)
        with pytest.raises(CryptoError):
            KtlsConnection(conn, mode="quantum")

    def test_encrypted_mode_needs_keys(self):
        bed = Testbed.back_to_back()
        conn, _ = connect_pair(bed.client, bed.server, 5000)
        with pytest.raises(CryptoError):
            KtlsConnection(conn, mode="sw", write_keys=None, read_keys=None)


class TestWireConfidentiality:
    @pytest.mark.parametrize("mode", ["sw", "hw"])
    def test_payload_not_on_wire_in_clear(self, mode):
        bed = Testbed.back_to_back()
        conn_c, conn_s = connect_pair(bed.client, bed.server, 5000)
        c, s = ktls_pair(conn_c, conn_s, mode)
        secret = b"SECRET-VALUE-0123456789" * 4
        sniffed = []
        original_cb = bed.link._a_to_b.receiver

        def sniffer(packet):
            sniffed.append(bytes(packet.payload))
            original_cb(packet)

        bed.link._a_to_b.receiver = sniffer
        run_echo_payload = {}

        def server():
            t = bed.server.app_thread(0)
            data = b""
            while len(data) < len(secret):
                data += yield from s.recv(t)
            run_echo_payload["got"] = data

        def client():
            yield from c.send(bed.client.app_thread(0), secret)

        bed.loop.process(server())
        bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert run_echo_payload["got"] == secret
        wire = b"".join(sniffed)
        assert secret not in wire
        assert b"SECRET" not in wire

    def test_plain_mode_payload_visible(self):
        bed = Testbed.back_to_back()
        conn_c, conn_s = connect_pair(bed.client, bed.server, 5000)
        c, s = ktls_pair(conn_c, conn_s, None)
        sniffed = []
        original_cb = bed.link._a_to_b.receiver

        def sniffer(packet):
            sniffed.append(bytes(packet.payload))
            original_cb(packet)

        bed.link._a_to_b.receiver = sniffer

        def client():
            yield from c.send(bed.client.app_thread(0), b"PLAINTEXT-MARKER")

        bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert b"PLAINTEXT-MARKER" in b"".join(sniffed)

    def test_hw_and_sw_produce_identical_wire_bytes(self):
        # The NIC engine must be a drop-in for software sealing.
        keys_c = TrafficKeys(key=b"\x11" * 16, iv=b"\x22" * 12)
        keys_s = TrafficKeys(key=b"\x33" * 16, iv=b"\x44" * 12)
        wires = {}
        for mode in ("sw", "hw"):
            bed = Testbed.back_to_back()
            conn_c, conn_s = connect_pair(bed.client, bed.server, 5000)
            c, s = ktls_pair(conn_c, conn_s, mode, keys_c, keys_s)
            sniffed = []
            original_cb = bed.link._a_to_b.receiver

            def sniffer(packet, sniffed=sniffed, original_cb=original_cb):
                if packet.transport.pkt_type == PacketType.DATA:
                    sniffed.append(bytes(packet.payload))
                original_cb(packet)

            bed.link._a_to_b.receiver = sniffer

            def client():
                yield from c.send(bed.client.app_thread(0), b"same-bytes" * 100)

            bed.loop.process(client())
            bed.loop.run(until=1.0)
            wires[mode] = b"".join(sniffed)
        assert wires["sw"] == wires["hw"]


class TestTamperDetection:
    def test_bit_flip_on_wire_detected(self):
        bed = Testbed.back_to_back()
        conn_c, conn_s = connect_pair(bed.client, bed.server, 5000)
        c, s = ktls_pair(conn_c, conn_s, "sw")
        flipped = [False]
        original_cb = bed.link._a_to_b.receiver

        def tamper(packet):
            if packet.payload and not flipped[0]:
                flipped[0] = True
                mutated = bytearray(packet.payload)
                mutated[8] ^= 1  # inside the ciphertext
                from repro.net.packet import Packet

                packet = Packet(packet.ip, packet.transport, bytes(mutated), packet.meta)
            original_cb(packet)

        bed.link._a_to_b.receiver = tamper

        def server():
            t = bed.server.app_thread(0)
            yield from s.recv(t)

        def client():
            yield from c.send(bed.client.app_thread(0), b"x" * 100)

        srv = bed.loop.process(server())
        bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert srv.triggered and not srv.ok
        assert isinstance(srv.value, AuthenticationError)


class TestHwRetransmission:
    def test_loss_with_offload_recovers_via_resync(self):
        # Paper §3.2: "TCP uses this feature for retransmissions where the
        # NIC sees the previous record sequence numbers."
        bed = Testbed.back_to_back()
        conn_c, conn_s = connect_pair(bed.client, bed.server, 5000, rto=0.5e-3)
        c, s = ktls_pair(conn_c, conn_s, "hw")
        state = {"n": 0}

        def loss_fn(packet):
            if packet.transport.pkt_type == PacketType.DATA:
                state["n"] += 1
                return state["n"] == 1
            return False

        bed.link.set_loss_fn("a", loss_fn)
        results = run_echo(bed, c, s, 4096)
        assert results["echoes"][0] == b"\x00" * 4096
        assert conn_c.retransmits >= 1
        # The retransmission went through a resync descriptor.
        key = ("ktls", id(c))
        assert bed.client.nic.flow_contexts.context_stats(key)["resyncs"] >= 1
