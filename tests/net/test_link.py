"""Link model tests: serialization, priorities, loss."""

import pytest

from repro.errors import SimulationError
from repro.net.headers import PROTO_SMT, IPv4Header, PacketType, TransportHeader
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.event_loop import EventLoop
from repro.units import GBPS


def make_packet(payload_len=100, priority=0):
    ip = IPv4Header(1, 2, PROTO_SMT, 60 + payload_len)
    transport = TransportHeader(1, 2, 3, PacketType.DATA, priority=priority)
    return Packet(ip, transport, bytes(payload_len))


class TestTiming:
    def test_delivery_includes_serialization_and_propagation(self):
        loop = EventLoop()
        link = Link(loop, bandwidth_bps=1 * GBPS, delay=1e-6)
        arrivals = []
        link.attach("b", lambda p: arrivals.append(loop.now))
        p = make_packet(100)
        link.send("a", p)
        loop.run()
        expected = (p.wire_size * 8) / (1 * GBPS) + 1e-6
        assert arrivals[0] == pytest.approx(expected)

    def test_back_to_back_packets_serialize(self):
        loop = EventLoop()
        link = Link(loop, bandwidth_bps=1 * GBPS, delay=0.0)
        arrivals = []
        link.attach("b", lambda p: arrivals.append(loop.now))
        p = make_packet(1000)
        link.send("a", p)
        link.send("a", p)
        loop.run()
        tx = (p.wire_size * 8) / (1 * GBPS)
        assert arrivals == [pytest.approx(tx), pytest.approx(2 * tx)]

    def test_directions_are_independent(self):
        loop = EventLoop()
        link = Link(loop, bandwidth_bps=1 * GBPS, delay=0.0)
        a_got, b_got = [], []
        link.attach("a", lambda p: a_got.append(loop.now))
        link.attach("b", lambda p: b_got.append(loop.now))
        p = make_packet(1000)
        link.send("a", p)
        link.send("b", p)
        loop.run()
        # Full duplex: both finish after one serialization, not two.
        assert a_got[0] == pytest.approx(b_got[0])


class TestPriorities:
    def test_higher_priority_jumps_queue(self):
        loop = EventLoop()
        link = Link(loop, bandwidth_bps=1 * GBPS, delay=0.0)
        order = []
        link.attach("b", lambda p: order.append(p.transport.priority))
        # While the first low-prio packet transmits, queue low then high.
        link.send("a", make_packet(1000, priority=0))
        link.send("a", make_packet(1000, priority=0))
        link.send("a", make_packet(1000, priority=7))
        loop.run()
        assert order == [0, 7, 0]

    def test_priority_out_of_range(self):
        loop = EventLoop()
        link = Link(loop)
        with pytest.raises(SimulationError):
            link.send("a", make_packet(10, priority=8))


class TestMtuAndLoss:
    def test_oversized_packet_rejected(self):
        loop = EventLoop()
        link = Link(loop, mtu=1500)
        with pytest.raises(SimulationError):
            link.send("a", make_packet(payload_len=1500))

    def test_loss_injection(self):
        loop = EventLoop()
        link = Link(loop)
        arrivals = []
        link.attach("b", lambda p: arrivals.append(p))
        dropped = [0]

        def drop_second(p):
            dropped[0] += 1
            return dropped[0] == 2

        link.set_loss_fn("a", drop_second)
        for _ in range(3):
            link.send("a", make_packet(100))
        loop.run()
        assert len(arrivals) == 2
        assert link.stats("a")["dropped"] == 1

    def test_stats(self):
        loop = EventLoop()
        link = Link(loop)
        link.attach("b", lambda p: None)
        p = make_packet(100)
        link.send("a", p)
        loop.run()
        stats = link.stats("a")
        assert stats["tx_packets"] == 1
        assert stats["tx_bytes"] == p.wire_size

    def test_unknown_side_rejected(self):
        with pytest.raises(SimulationError):
            Link(EventLoop()).attach("c", lambda p: None)
