"""Switch fabric tests: multi-host topologies."""

import pytest

from repro.errors import SimulationError
from repro.homa import HomaSocket, HomaTransport
from repro.testbed import StarTestbed


class TestStarTopology:
    def test_construction(self):
        bed = StarTestbed.star(3)
        assert len(bed.clients) == 3
        addrs = {h.addr for h in bed.clients} | {bed.server.addr}
        assert len(addrs) == 4

    def test_client_to_server_echo(self):
        bed = StarTestbed.star(2)
        st = HomaTransport(bed.server)
        ssock = HomaSocket(st, 7000)

        def echo():
            thread = bed.server.app_thread(0)
            while True:
                rpc = yield from ssock.recv_request(thread)
                yield from ssock.reply(thread, rpc, rpc.payload[::-1])

        bed.loop.process(echo())
        results = {}

        def client(i):
            host = bed.clients[i]
            ct = HomaTransport(host)
            sock = HomaSocket(ct, host.alloc_port())
            thread = host.app_thread(0)
            results[i] = yield from sock.call(thread, bed.server.addr, 7000,
                                              b"client%d" % i)

        procs = [bed.loop.process(client(i)) for i in range(2)]
        bed.loop.run(until=1.0)
        assert all(p.ok for p in procs)
        assert results == {0: b"0tneilc", 1: b"1tneilc"}

    def test_cross_client_isolation(self):
        # Packets to the server do not appear at other clients' ports.
        bed = StarTestbed.star(2)
        stray = []
        bed.clients[1].nic.set_rx_handler(lambda p: stray.append(p))
        st = HomaTransport(bed.server)
        ssock = HomaSocket(st, 7000)

        def echo():
            thread = bed.server.app_thread(0)
            rpc = yield from ssock.recv_request(thread)
            yield from ssock.reply(thread, rpc, b"ok")

        bed.loop.process(echo())

        def client():
            host = bed.clients[0]
            ct = HomaTransport(host)
            sock = HomaSocket(ct, host.alloc_port())
            yield from sock.call(host.app_thread(0), bed.server.addr, 7000, b"hi")

        done = bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert done.ok
        assert stray == []

    def test_mtu_enforced_on_fabric(self):
        from repro.net.headers import IPv4Header, TransportHeader
        from repro.net.packet import Packet

        bed = StarTestbed.star(1, mtu=1500)
        port = bed.fabric.port(bed.clients[0].addr)
        big = Packet(
            IPv4Header(bed.clients[0].addr, bed.server.addr, 146, 2000),
            TransportHeader(1, 2, 3),
            bytes(1940),
        )
        with pytest.raises(SimulationError):
            port.send("a", big)

    def test_port_reuse_same_object(self):
        bed = StarTestbed.star(1)
        addr = bed.clients[0].addr
        assert bed.fabric.port(addr) is bed.fabric.port(addr)

    def test_egress_stats(self):
        bed = StarTestbed.star(1)
        st = HomaTransport(bed.server)
        ssock = HomaSocket(st, 7000)

        def echo():
            thread = bed.server.app_thread(0)
            rpc = yield from ssock.recv_request(thread)
            yield from ssock.reply(thread, rpc, b"ok")

        bed.loop.process(echo())

        def client():
            host = bed.clients[0]
            ct = HomaTransport(host)
            sock = HomaSocket(ct, host.alloc_port())
            yield from sock.call(host.app_thread(0), bed.server.addr, 7000, b"x" * 500)

        done = bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert done.ok
        stats = bed.fabric.port(bed.clients[0].addr).stats("a")
        assert stats["tx_packets"] >= 1
        assert stats["tx_bytes"] > 500
