"""Switch fabric tests: multi-host topologies."""

import pytest

from repro.errors import SimulationError
from repro.homa import HomaSocket, HomaTransport
from repro.net.fabric import SwitchFabric
from repro.net.faults import FaultConfig, FaultInjector
from repro.net.headers import HEADERS_SIZE, IPv4Header, TransportHeader
from repro.net.packet import Packet
from repro.sim.event_loop import EventLoop
from repro.testbed import StarTestbed


def _packet(src, dst, payload=b""):
    return Packet(
        IPv4Header(src, dst, 146, HEADERS_SIZE + len(payload)),
        TransportHeader(1000, 2000, 1),
        payload,
    )


class TestStarTopology:
    def test_construction(self):
        bed = StarTestbed.star(3)
        assert len(bed.clients) == 3
        addrs = {h.addr for h in bed.clients} | {bed.server.addr}
        assert len(addrs) == 4

    def test_client_to_server_echo(self):
        bed = StarTestbed.star(2)
        st = HomaTransport(bed.server)
        ssock = HomaSocket(st, 7000)

        def echo():
            thread = bed.server.app_thread(0)
            while True:
                rpc = yield from ssock.recv_request(thread)
                yield from ssock.reply(thread, rpc, rpc.payload[::-1])

        bed.loop.process(echo())
        results = {}

        def client(i):
            host = bed.clients[i]
            ct = HomaTransport(host)
            sock = HomaSocket(ct, host.alloc_port())
            thread = host.app_thread(0)
            results[i] = yield from sock.call(thread, bed.server.addr, 7000,
                                              b"client%d" % i)

        procs = [bed.loop.process(client(i)) for i in range(2)]
        bed.loop.run(until=1.0)
        assert all(p.ok for p in procs)
        assert results == {0: b"0tneilc", 1: b"1tneilc"}

    def test_cross_client_isolation(self):
        # Packets to the server do not appear at other clients' ports.
        bed = StarTestbed.star(2)
        stray = []
        bed.clients[1].nic.set_rx_handler(lambda p: stray.append(p))
        st = HomaTransport(bed.server)
        ssock = HomaSocket(st, 7000)

        def echo():
            thread = bed.server.app_thread(0)
            rpc = yield from ssock.recv_request(thread)
            yield from ssock.reply(thread, rpc, b"ok")

        bed.loop.process(echo())

        def client():
            host = bed.clients[0]
            ct = HomaTransport(host)
            sock = HomaSocket(ct, host.alloc_port())
            yield from sock.call(host.app_thread(0), bed.server.addr, 7000, b"hi")

        done = bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert done.ok
        assert stray == []

    def test_mtu_enforced_on_fabric(self):
        from repro.net.headers import IPv4Header, TransportHeader
        from repro.net.packet import Packet

        bed = StarTestbed.star(1, mtu=1500)
        port = bed.fabric.port(bed.clients[0].addr)
        big = Packet(
            IPv4Header(bed.clients[0].addr, bed.server.addr, 146, 2000),
            TransportHeader(1, 2, 3),
            bytes(1940),
        )
        with pytest.raises(SimulationError):
            port.send("a", big)

    def test_port_reuse_same_object(self):
        bed = StarTestbed.star(1)
        addr = bed.clients[0].addr
        assert bed.fabric.port(addr) is bed.fabric.port(addr)

    def test_egress_stats(self):
        bed = StarTestbed.star(1)
        st = HomaTransport(bed.server)
        ssock = HomaSocket(st, 7000)

        def echo():
            thread = bed.server.app_thread(0)
            rpc = yield from ssock.recv_request(thread)
            yield from ssock.reply(thread, rpc, b"ok")

        bed.loop.process(echo())

        def client():
            host = bed.clients[0]
            ct = HomaTransport(host)
            sock = HomaSocket(ct, host.alloc_port())
            yield from sock.call(host.app_thread(0), bed.server.addr, 7000, b"x" * 500)

        done = bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert done.ok
        stats = bed.fabric.port(bed.clients[0].addr).stats("a")
        assert stats["tx_packets"] >= 1
        assert stats["tx_bytes"] > 500


class TestFabricEdgePaths:
    """SwitchFabric/FabricPort behaviour off the happy path."""

    def _fabric(self, **kwargs):
        loop = EventLoop()
        fabric = SwitchFabric(loop, **kwargs)
        received = []
        fabric.port(1).attach("x", lambda p: None)
        fabric.port(2).attach("x", received.append)
        return loop, fabric, received

    def test_oversized_packet_raises(self):
        loop, fabric, _ = self._fabric(mtu=1500)
        with pytest.raises(SimulationError, match="exceeds MTU"):
            fabric.port(1).send("x", _packet(1, 2, payload=b"z" * 1600))

    def test_switch_rejects_unknown_destination(self):
        loop, fabric, _ = self._fabric()
        with pytest.raises(SimulationError, match="no port"):
            fabric.switch.inject(_packet(1, 99))

    def test_stats_after_trimming(self):
        loop, fabric, received = self._fabric(buffer_bytes=4096, trimming=True)
        for _ in range(10):
            fabric.switch.inject(_packet(1, 2, payload=b"z" * 1400))
        loop.run(until=1e-3)
        stats = fabric.switch.stats(2)
        assert stats["trimmed"] > 0
        assert stats["queued"] == 0  # drained
        trimmed = [p for p in received if p.meta.get("trimmed")]
        assert len(trimmed) == stats["trimmed"]
        assert all(p.payload == b"" for p in trimmed)
        totals = fabric.switch.totals()
        assert totals["trimmed"] == stats["trimmed"]
        assert len(received) == 10 - totals["dropped"]

    def test_stats_without_trimming_drops(self):
        loop, fabric, received = self._fabric(buffer_bytes=4096, trimming=False)
        for _ in range(10):
            fabric.switch.inject(_packet(1, 2, payload=b"z" * 1400))
        loop.run(until=1e-3)
        stats = fabric.switch.stats(2)
        assert stats["trimmed"] == 0
        assert stats["dropped"] > 0
        assert len(received) == 10 - stats["dropped"]

    def test_fault_injector_on_switch_egress(self):
        loop, fabric, received = self._fabric()
        injector = FaultInjector(loop, FaultConfig(drop_rate=1.0), seed=1)
        fabric.switch.inject_faults(2, injector)
        fabric.switch.inject(_packet(1, 2, payload=b"hi"))
        loop.run(until=1e-3)
        assert received == []
        assert injector.stats()["dropped"] == 1
        # Uninstalling restores delivery.
        fabric.switch.inject_faults(2, None)
        fabric.switch.inject(_packet(1, 2, payload=b"hi"))
        loop.run(until=2e-3)
        assert len(received) == 1

    def test_fault_injector_unknown_port_raises(self):
        loop, fabric, _ = self._fabric()
        injector = FaultInjector(loop, FaultConfig(), seed=1)
        with pytest.raises(SimulationError, match="no port"):
            fabric.switch.inject_faults(99, injector)
        with pytest.raises(SimulationError, match="no port"):
            fabric.switch.install_tap(99, lambda p, v: None)

    def test_fault_injector_on_host_uplink(self):
        loop, fabric, received = self._fabric()
        injector = FaultInjector(loop, FaultConfig(drop_rate=1.0), seed=1)
        port = fabric.port(1)
        port.inject_faults("x", injector)
        port.send("x", _packet(1, 2, payload=b"hi"))
        loop.run(until=1e-3)
        assert received == []
        assert injector.stats()["dropped"] == 1
