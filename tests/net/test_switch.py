"""Switch tests: forwarding, buffering, NDP-style trimming."""

import pytest

from repro.errors import SimulationError
from repro.net.headers import PROTO_SMT, IPv4Header, PacketType, TransportHeader
from repro.net.packet import Packet
from repro.net.switch import Switch
from repro.sim.event_loop import EventLoop
from repro.units import GBPS


def make_packet(dst, payload_len=100, priority=0):
    ip = IPv4Header(1, dst, PROTO_SMT, 60 + payload_len)
    transport = TransportHeader(1, 2, 3, PacketType.DATA, priority=priority)
    return Packet(ip, transport, bytes(payload_len))


class TestForwarding:
    def test_delivers_to_destination_port(self):
        loop = EventLoop()
        switch = Switch(loop)
        got = {10: [], 20: []}
        switch.attach(10, lambda p: got[10].append(p))
        switch.attach(20, lambda p: got[20].append(p))
        switch.inject(make_packet(10))
        switch.inject(make_packet(20))
        switch.inject(make_packet(20))
        loop.run()
        assert len(got[10]) == 1 and len(got[20]) == 2

    def test_unknown_destination_rejected(self):
        switch = Switch(EventLoop())
        with pytest.raises(SimulationError):
            switch.inject(make_packet(99))

    def test_priority_scheduling(self):
        loop = EventLoop()
        switch = Switch(loop, bandwidth_bps=1 * GBPS)
        order = []
        switch.attach(10, lambda p: order.append(p.transport.priority))
        switch.inject(make_packet(10, 1000, priority=0))
        switch.inject(make_packet(10, 1000, priority=0))
        switch.inject(make_packet(10, 1000, priority=7))
        loop.run()
        assert order == [0, 7, 0]


class TestBufferingAndTrimming:
    def test_overflow_drops_without_trimming(self):
        loop = EventLoop()
        switch = Switch(loop, buffer_bytes=3000, trimming=False)
        got = []
        switch.attach(10, lambda p: got.append(p))
        for _ in range(10):
            switch.inject(make_packet(10, 1400))
        loop.run()
        assert switch.stats(10)["dropped"] > 0
        assert len(got) < 10

    def test_overflow_trims_with_trimming(self):
        loop = EventLoop()
        switch = Switch(loop, buffer_bytes=3000, trimming=True)
        got = []
        switch.attach(10, lambda p: got.append(p))
        for _ in range(10):
            switch.inject(make_packet(10, 1400))
        loop.run()
        stats = switch.stats(10)
        assert stats["trimmed"] > 0
        # Trimmed packets still arrive: headers only, top priority.
        trimmed = [p for p in got if p.meta.get("trimmed")]
        assert trimmed
        assert all(len(p.payload) == 0 for p in trimmed)
        # Transport metadata survives trimming (paper §7: the receiver can
        # identify sender demand from plaintext metadata).
        assert all(p.transport.msg_id == 3 for p in trimmed)
