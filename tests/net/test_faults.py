"""Unit tests for the deterministic fault-injection subsystem."""

import pytest

from repro.errors import SimulationError
from repro.net.faults import FaultConfig, FaultInjector, schedule_from_seed
from repro.net.headers import IPv4Header, TransportHeader
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.event_loop import EventLoop


def make_packet(seq: int = 0, payload: bytes = b"x" * 100) -> Packet:
    header = TransportHeader(src_port=1, dst_port=2, msg_id=seq)
    ip = IPv4Header(10, 20, 146, 60 + len(payload), ipid=seq)
    return Packet(ip, header, payload)


def pump(loop: EventLoop, injector: FaultInjector, n: int, payload=b"x" * 100):
    """Push n packets through the injector; return delivery order (ipids)."""
    out = []
    for i in range(n):
        injector.process(make_packet(i, payload), lambda p: out.append(p))
        loop.run()  # drain any delayed (reordered/duplicated) deliveries
    return out


class TestFaultConfig:
    def test_rejects_bad_probability(self):
        with pytest.raises(SimulationError):
            FaultConfig(drop_rate=1.5)
        with pytest.raises(SimulationError):
            FaultConfig(corrupt_rate=-0.1)

    def test_rejects_flap_longer_than_period(self):
        with pytest.raises(SimulationError):
            FaultConfig(flap_period=1e-3, flap_down=1e-3)

    def test_any_faults(self):
        assert not FaultConfig().any_faults
        assert FaultConfig(drop_rate=0.1).any_faults
        assert FaultConfig(flap_period=1e-3, flap_down=1e-4).any_faults

    def test_describe_names_non_defaults(self):
        assert FaultConfig().describe() == "clean"
        assert "drop_rate=0.1" in FaultConfig(drop_rate=0.1).describe()


class TestFaultInjector:
    def test_clean_config_is_transparent(self):
        loop = EventLoop()
        inj = FaultInjector(loop, FaultConfig(), seed=1)
        out = pump(loop, inj, 50)
        assert [p.ip.ipid for p in out] == list(range(50))
        assert inj.counters.delivered.value == 50
        assert inj.counters.total() == 100  # seen + delivered only

    def test_drop_rate_drops_roughly_that_fraction(self):
        loop = EventLoop()
        inj = FaultInjector(loop, FaultConfig(drop_rate=0.2), seed=2)
        out = pump(loop, inj, 1000)
        dropped = inj.counters.dropped.value
        assert len(out) == 1000 - dropped
        assert 120 <= dropped <= 280  # ~200 expected

    def test_corruption_flips_exactly_one_payload_byte(self):
        loop = EventLoop()
        inj = FaultInjector(loop, FaultConfig(corrupt_rate=1.0), seed=3)
        original = bytes(range(100))
        out = pump(loop, inj, 10, payload=original)
        assert inj.counters.corrupted.value == 10
        for p in out:
            diff = [i for i in range(100) if p.payload[i] != original[i]]
            assert len(diff) == 1  # one byte, genuinely changed

    def test_corruption_skips_payloadless_packets(self):
        loop = EventLoop()
        inj = FaultInjector(loop, FaultConfig(corrupt_rate=1.0), seed=4)
        out = pump(loop, inj, 5, payload=b"")
        assert inj.counters.corrupted.value == 0
        assert all(p.payload == b"" for p in out)

    def test_duplicates_deliver_twice(self):
        loop = EventLoop()
        inj = FaultInjector(loop, FaultConfig(duplicate_rate=1.0), seed=5)
        out = pump(loop, inj, 20)
        assert len(out) == 40
        assert inj.counters.duplicated.value == 20

    def test_reordering_changes_delivery_order(self):
        loop = EventLoop()
        inj = FaultInjector(
            loop, FaultConfig(reorder_rate=0.5, reorder_delay=50e-6), seed=6
        )
        # Feed a burst without draining between packets so held-back ones
        # can genuinely be overtaken.
        out = []
        for i in range(100):
            inj.process(make_packet(i), lambda p: out.append(p))
        loop.run()
        ipids = [p.ip.ipid for p in out]
        assert sorted(ipids) == list(range(100))  # nothing lost
        assert ipids != list(range(100))  # but not in order
        assert inj.counters.reordered.value > 0

    def test_burst_loss_drops_consecutively(self):
        loop = EventLoop()
        inj = FaultInjector(
            loop,
            FaultConfig(burst_enter=0.05, burst_exit=0.2, burst_loss_rate=1.0),
            seed=7,
        )
        delivered = []
        lost = []
        for i in range(2000):
            n0 = len(delivered)
            inj.process(make_packet(i), lambda p: delivered.append(p))
            if len(delivered) == n0:
                lost.append(i)
        assert inj.counters.burst_dropped.value == len(lost) > 0
        # Bursty: at least one run of >= 3 consecutive losses.
        runs, run = [], 1
        for a, b in zip(lost, lost[1:]):
            run = run + 1 if b == a + 1 else 1
            runs.append(run)
        assert max(runs, default=0) >= 3

    def test_flap_window_swallows_everything(self):
        loop = EventLoop()
        cfg = FaultConfig(flap_period=1e-3, flap_down=0.2e-3)
        inj = FaultInjector(loop, cfg, seed=8)
        out = []
        # Packet at t=0.5ms (link up) and one at t=0.9ms (dark window).
        loop.call_at(0.5e-3, lambda: inj.process(make_packet(0), out.append))
        loop.call_at(0.9e-3, lambda: inj.process(make_packet(1), out.append))
        loop.run()
        assert [p.ip.ipid for p in out] == [0]
        assert inj.counters.flap_dropped.value == 1

    def test_same_seed_same_fate(self):
        cfg = FaultConfig(
            drop_rate=0.1, corrupt_rate=0.1, duplicate_rate=0.1, reorder_rate=0.3
        )
        runs = []
        for _ in range(2):
            loop = EventLoop()
            inj = FaultInjector(loop, cfg, seed=99)
            out = pump(loop, inj, 500)
            runs.append(([(p.ip.ipid, p.payload) for p in out], inj.stats()))
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self):
        cfg = FaultConfig(drop_rate=0.3)
        outcomes = []
        for seed in (0, 1):
            loop = EventLoop()
            inj = FaultInjector(loop, cfg, seed=seed)
            out = pump(loop, inj, 200)
            outcomes.append([p.ip.ipid for p in out])
        assert outcomes[0] != outcomes[1]


class TestLinkIntegration:
    def send_burst(self, link, n=50):
        loop = link.loop
        got = []
        link.attach("b", got.append)
        for i in range(n):
            link.send("a", make_packet(i))
        loop.run()
        return got

    def test_injector_on_link_direction(self):
        loop = EventLoop()
        link = Link(loop)
        inj = FaultInjector(loop, FaultConfig(drop_rate=1.0), seed=0)
        link.inject_faults("a", inj)
        got = self.send_burst(link)
        assert got == []
        assert link.fault_stats("a")["dropped"] == 50
        # The other direction has no injector installed.
        assert link.fault_stats("b") == {}

    def test_injector_composes_with_loss_fn(self):
        # Legacy loss_fn drops first; the injector only sees survivors.
        loop = EventLoop()
        link = Link(loop)
        link.set_loss_fn("a", lambda p: p.ip.ipid % 2 == 0)
        inj = FaultInjector(loop, FaultConfig(), seed=0)
        link.inject_faults("a", inj)
        got = self.send_burst(link, 10)
        assert [p.ip.ipid for p in got] == [1, 3, 5, 7, 9]
        assert inj.counters.seen.value == 5

    def test_uninstall(self):
        loop = EventLoop()
        link = Link(loop)
        inj = FaultInjector(loop, FaultConfig(drop_rate=1.0), seed=0)
        link.inject_faults("a", inj)
        link.inject_faults("a", None)
        got = self.send_burst(link, 10)
        assert len(got) == 10


class TestSwitchIntegration:
    def test_injector_on_switch_port(self):
        from repro.net.switch import Switch

        loop = EventLoop()
        switch = Switch(loop)
        got = []
        switch.attach(20, got.append)
        inj = FaultInjector(loop, FaultConfig(drop_rate=1.0), seed=0)
        switch.inject_faults(20, inj)
        for i in range(10):
            switch.inject(make_packet(i))
        loop.run()
        assert got == []
        assert inj.counters.dropped.value == 10

    def test_unknown_port_raises(self):
        from repro.net.switch import Switch

        loop = EventLoop()
        switch = Switch(loop)
        with pytest.raises(SimulationError):
            switch.inject_faults(99, FaultInjector(loop, FaultConfig()))


class TestScheduleFromSeed:
    def test_deterministic_and_bounded(self):
        for seed in range(100):
            a = schedule_from_seed(seed)
            assert a == schedule_from_seed(seed)
            assert 0 <= a.drop_rate <= 0.10
            assert 0 <= a.corrupt_rate <= 0.04
            if a.flap_period:
                assert a.flap_down < a.flap_period

    def test_seeds_cover_fault_mixes(self):
        schedules = [schedule_from_seed(s) for s in range(100)]
        assert any(s.burst_enter for s in schedules)
        assert any(s.flap_period for s in schedules)
        assert any(not s.burst_enter and not s.flap_period for s in schedules)
