"""Wire-format tests: byte-exact header round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net.addressing import FlowTuple, format_addr, make_addr
from repro.net.headers import (
    HEADERS_SIZE,
    IPV4_HEADER_SIZE,
    IPv4Header,
    PROTO_HOMA,
    PROTO_SMT,
    PROTO_TCP,
    PacketType,
    TRANSPORT_HEADER_SIZE,
    TransportHeader,
)
from repro.net.packet import Packet


class TestAddressing:
    def test_make_and_format(self):
        addr = make_addr(10, 0, 0, 1)
        assert format_addr(addr) == "10.0.0.1"

    def test_bad_octet(self):
        with pytest.raises(ValueError):
            make_addr(256, 0, 0, 1)

    def test_flow_reversal(self):
        flow = FlowTuple(1, 100, 2, 200, PROTO_SMT)
        rev = flow.reversed()
        assert rev.src_addr == 2 and rev.dst_port == 100
        assert rev.reversed() == flow

    def test_rss_hash_deterministic(self):
        flow = FlowTuple(1, 100, 2, 200, PROTO_SMT)
        assert flow.rss_hash() == FlowTuple(1, 100, 2, 200, PROTO_SMT).rss_hash()

    def test_rss_hash_differs_per_flow(self):
        a = FlowTuple(1, 100, 2, 200, PROTO_SMT).rss_hash()
        b = FlowTuple(1, 101, 2, 200, PROTO_SMT).rss_hash()
        assert a != b


class TestIPv4Header:
    def test_size(self):
        assert len(IPv4Header(1, 2, PROTO_TCP, 60).encode()) == IPV4_HEADER_SIZE

    def test_roundtrip(self):
        header = IPv4Header(make_addr(10, 0, 0, 1), make_addr(10, 0, 0, 2),
                            PROTO_HOMA, 1500, ipid=777)
        assert IPv4Header.decode(header.encode()) == header

    def test_truncated_rejected(self):
        with pytest.raises(ProtocolError):
            IPv4Header.decode(bytes(10))

    def test_bad_version_rejected(self):
        data = bytearray(IPv4Header(1, 2, 6, 60).encode())
        data[0] = 0x55
        with pytest.raises(ProtocolError):
            IPv4Header.decode(bytes(data))


class TestTransportHeader:
    def test_size_is_40_bytes(self):
        # 20-byte TCP common part + 20 bytes of options (paper Fig. 3).
        header = TransportHeader(1, 2, 3)
        assert len(header.encode()) == TRANSPORT_HEADER_SIZE == 40

    def test_roundtrip_all_fields(self):
        header = TransportHeader(
            src_port=1234,
            dst_port=80,
            msg_id=0xDEADBEEF12345678,
            pkt_type=PacketType.GRANT,
            resend_packet_offset=7,
            msg_len=1_000_000,
            tso_offset=64_000,
            grant_offset=120_000,
            retransmit_offset=1449,
            priority=6,
            incast=1,
        )
        assert TransportHeader.decode(header.encode()) == header

    def test_truncated_rejected(self):
        with pytest.raises(ProtocolError):
            TransportHeader.decode(bytes(20))

    def test_with_fields(self):
        header = TransportHeader(1, 2, 3)
        modified = header.with_fields(tso_offset=500)
        assert modified.tso_offset == 500 and modified.msg_id == 3
        assert header.tso_offset == 0  # frozen original untouched

    @given(
        st.integers(0, 0xFFFF),
        st.integers(0, 0xFFFF),
        st.integers(0, (1 << 64) - 1),
        st.sampled_from(list(PacketType)),
        st.integers(0, 0xFFFFFFFF),
        st.integers(0, 0xFFFFFFFF),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, sport, dport, msg_id, ptype, msg_len, tso_off):
        header = TransportHeader(
            sport, dport, msg_id, ptype, msg_len=msg_len, tso_offset=tso_off
        )
        assert TransportHeader.decode(header.encode()) == header


class TestPacket:
    def _packet(self, payload=b"hello"):
        ip = IPv4Header(make_addr(10, 0, 0, 1), make_addr(10, 0, 0, 2), PROTO_SMT, 0)
        transport = TransportHeader(5, 6, 7, msg_len=len(payload))
        return Packet(ip, transport, payload)

    def test_size(self):
        assert self._packet().size == HEADERS_SIZE + 5

    def test_wire_size_includes_ethernet(self):
        p = self._packet()
        assert p.wire_size == p.size + 38

    def test_encode_decode_roundtrip(self):
        p = self._packet(b"payload-bytes")
        decoded = Packet.decode(p.encode())
        assert decoded.payload == b"payload-bytes"
        assert decoded.transport == p.transport
        assert decoded.ip.src_addr == p.ip.src_addr

    def test_length_mismatch_rejected(self):
        data = self._packet().encode()
        with pytest.raises(ProtocolError):
            Packet.decode(data + b"extra")

    def test_flow_extraction(self):
        flow = self._packet().flow
        assert flow.src_port == 5 and flow.dst_port == 6 and flow.proto == PROTO_SMT

    def test_meta_not_in_equality(self):
        a = self._packet().with_meta(queue=1)
        b = self._packet().with_meta(queue=2)
        assert a == b  # meta is simulation-only annotation
