"""Leaf-spine fabric: ECMP routing, trunks, and ClosTestbed parity."""

import pytest

from repro.errors import SimulationError
from repro.homa import HomaSocket, HomaTransport
from repro.net import ClosFabric, ecmp_hash
from repro.net.faults import FaultConfig
from repro.net.headers import HEADERS_SIZE, IPv4Header, TransportHeader
from repro.net.packet import Packet
from repro.sim.event_loop import EventLoop
from repro.testbed import ClosTestbed


def _packet(src, dst, sport=1000, dport=2000, payload=b"", proto=146):
    return Packet(
        IPv4Header(src, dst, proto, HEADERS_SIZE + len(payload)),
        TransportHeader(sport, dport, 1),
        payload,
    )


class TestEcmpHash:
    def test_same_flow_same_hash(self):
        # The hash ignores payload and msg_id: every packet of a flow
        # must ride the same spine or records reorder across paths.
        a = _packet(1, 2, payload=b"x" * 100)
        b = Packet(a.ip, TransportHeader(1000, 2000, 999), b"other bytes")
        assert ecmp_hash(a) == ecmp_hash(b)

    def test_deterministic(self):
        p = _packet(7, 8, sport=42)
        assert ecmp_hash(p, salt=3) == ecmp_hash(p, salt=3)

    def test_salt_reshuffles(self):
        packets = [_packet(1, 2, sport=s) for s in range(1000, 1032)]
        base = [ecmp_hash(p, 0) % 2 for p in packets]
        salted = [ecmp_hash(p, 1) % 2 for p in packets]
        assert base != salted

    def test_flows_spread_over_spines(self):
        choices = {ecmp_hash(_packet(1, 2, sport=s)) % 2 for s in range(1000, 1032)}
        assert choices == {0, 1}


class TestClosFabric:
    def _build(self, **kwargs):
        loop = EventLoop()
        fabric = ClosFabric(loop, num_racks=2, num_spines=2, **kwargs)
        received = {}
        addrs = {}
        for rack, name in ((0, "a"), (0, "b"), (1, "c")):
            addr = 0x0A000000 + len(addrs) + 1
            addrs[name] = addr
            port = fabric.attach_host(rack, addr)
            port.attach("x", lambda p, name=name: received.setdefault(name, []).append(p))
        return loop, fabric, addrs, received

    def test_bad_topologies_rejected(self):
        with pytest.raises(SimulationError):
            ClosFabric(EventLoop(), num_racks=0, num_spines=2)
        with pytest.raises(SimulationError):
            ClosFabric(EventLoop(), num_racks=2, num_spines=0)

    def test_attach_errors(self):
        loop, fabric, addrs, _ = self._build()
        with pytest.raises(SimulationError):
            fabric.attach_host(5, 99)  # rack out of range
        with pytest.raises(SimulationError):
            fabric.attach_host(0, addrs["a"])  # duplicate address
        with pytest.raises(SimulationError):
            fabric.port(99)
        with pytest.raises(SimulationError):
            fabric.rack_of(99)

    def test_intra_rack_skips_spines(self):
        loop, fabric, addrs, received = self._build()
        fabric.port(addrs["a"]).send("x", _packet(addrs["a"], addrs["b"]))
        loop.run(until=1e-3)
        assert len(received["b"]) == 1
        assert fabric.spine_spread() == [0, 0]

    def test_cross_rack_single_flow_single_spine(self):
        loop, fabric, addrs, received = self._build()
        for _ in range(20):
            fabric.port(addrs["a"]).send("x", _packet(addrs["a"], addrs["c"]))
        loop.run(until=1e-3)
        assert len(received["c"]) == 20
        spread = fabric.spine_spread()
        assert sorted(spread) == [0, 20]  # all packets on one spine
        # and all of them were steered by rack 0's leaf.
        assert fabric.spine_packets[1] == [0, 0]

    def test_cross_rack_flows_spread(self):
        loop, fabric, addrs, received = self._build()
        for sport in range(1000, 1032):
            fabric.port(addrs["a"]).send(
                "x", _packet(addrs["a"], addrs["c"], sport=sport)
            )
        loop.run(until=1e-3)
        assert len(received["c"]) == 32
        spread = fabric.spine_spread()
        assert sum(spread) == 32
        assert min(spread) > 0

    def test_unknown_destination_raises(self):
        loop, fabric, addrs, _ = self._build()
        with pytest.raises(SimulationError):
            fabric.leaves[0].inject(_packet(addrs["a"], 0xDEAD))

    def test_stats_shape(self):
        loop, fabric, addrs, _ = self._build()
        fabric.port(addrs["a"]).send("x", _packet(addrs["a"], addrs["c"]))
        loop.run(until=1e-3)
        stats = fabric.stats()
        assert set(stats) == {"leaf", "spine", "spine_spread"}
        assert stats["leaf"]["dropped"] == 0
        assert stats["spine"]["dropped"] == 0
        assert sum(stats["spine_spread"]) == 1

    def test_trunk_overflow_trims(self):
        # A burst of one flow into a tiny trunk buffer: with trimming on,
        # overflowing packets forward headers-only instead of vanishing.
        loop, fabric, addrs, received = self._build(
            trunk_buffer_bytes=4096, trimming=True
        )
        for _ in range(10):
            fabric.leaves[0].inject(_packet(addrs["a"], addrs["c"], payload=b"z" * 1400))
        loop.run(until=1e-3)
        stats = fabric.stats()
        assert stats["leaf"]["trimmed"] > 0
        trimmed = [p for p in received["c"] if p.meta.get("trimmed")]
        full = [p for p in received["c"] if not p.meta.get("trimmed")]
        assert trimmed and full
        assert all(p.payload == b"" for p in trimmed)
        assert len(received["c"]) == 10 - stats["leaf"]["dropped"]


class TestEcmpResalt:
    """Re-salt / reconvergence correctness after spine failures."""

    N_SPINES = 4

    def _fabric(self, num_spines=N_SPINES):
        loop = EventLoop()
        fabric = ClosFabric(loop, num_racks=2, num_spines=num_spines)
        a = fabric.attach_host(0, 0x0A000001)
        fabric.attach_host(1, 0x0A010001)
        return loop, fabric

    def _flows(self, n=64):
        return [_packet(0x0A000001, 0x0A010001, sport=1000 + s) for s in range(n)]

    def test_all_flows_map_to_survivors_after_kill(self):
        loop, fabric = self._fabric()
        flows = self._flows()
        fabric.fail_spine(2)
        live = fabric.reconverge()
        assert live == (0, 1, 3)
        for p in flows:
            assert fabric.spine_for(p) in live, (
                f"flow sport={p.transport.src_port} still maps to a dead spine"
            )

    def test_surviving_flows_untouched_without_resalt(self):
        # Reconverging without a new salt migrates only the orphaned
        # flows: anything already on a surviving spine stays put as long
        # as the survivor keeps its position in the live tuple.
        loop, fabric = self._fabric()
        flows = self._flows()
        before = {p.transport.src_port: fabric.spine_for(p) for p in flows}
        fabric.fail_spine(self.N_SPINES - 1)  # survivors keep indices 0..2
        fabric.reconverge()
        moved = sum(
            1
            for p in flows
            if before[p.transport.src_port] != self.N_SPINES - 1
            and fabric.spine_for(p) != before[p.transport.src_port]
        )
        # The modulo shrink (4 -> 3) does remap some surviving flows, but
        # every flow previously on the dead spine *must* have moved and
        # every flow must land on a survivor.
        orphans = [p for p in flows if before[p.transport.src_port] == 3]
        assert orphans, "hash never used the dead spine: test is vacuous"
        for p in orphans:
            assert fabric.spine_for(p) != 3
        assert moved < len(flows)  # not a full reshuffle

    def test_identity_reconverge_is_a_noop_mapping(self):
        # All spines alive, salt unchanged: reconverge must not move a
        # single flow (salt=None keeps the current salt; the live set is
        # the full set, so indices are stable).
        loop, fabric = self._fabric()
        flows = self._flows()
        before = [fabric.spine_for(p) for p in flows]
        fabric.reconverge()
        assert [fabric.spine_for(p) for p in flows] == before
        # Explicitly re-asserting the current salt is equally identity.
        fabric.reconverge(salt=fabric.ecmp_salt)
        assert [fabric.spine_for(p) for p in flows] == before

    def test_resalt_reshuffles_and_stays_on_survivors(self):
        loop, fabric = self._fabric()
        flows = self._flows()
        fabric.fail_spine(0)
        before = [fabric.spine_for(p) for p in flows]
        live = fabric.reconverge(salt=17)
        after = [fabric.spine_for(p) for p in flows]
        assert after != before  # the salt actually reshuffled
        assert set(after) <= set(live)
        assert fabric.ecmp_salt == 17

    def test_restored_spine_rejoins_routing(self):
        loop, fabric = self._fabric(num_spines=2)
        fabric.fail_spine(1)
        assert fabric.reconverge() == (0,)
        flows = self._flows()
        assert {fabric.spine_for(p) for p in flows} == {0}
        fabric.restore_spine(1)
        # Routing tables only change at reconverge, not at revival.
        assert fabric.routing_spines() == (0,)
        assert fabric.reconverge() == (0, 1)
        assert {fabric.spine_for(p) for p in flows} == {0, 1}

    def test_no_live_spines_rejected(self):
        loop, fabric = self._fabric(num_spines=2)
        fabric.fail_spine(0)
        fabric.fail_spine(1)
        with pytest.raises(SimulationError):
            fabric.reconverge()

    def test_blackhole_window_then_clean_after_reconverge(self):
        # Packets of a flow hashed to the dead spine blackhole until the
        # tables are reprogrammed; after reconverge the same flow flows.
        loop = EventLoop()
        fabric = ClosFabric(loop, num_racks=2, num_spines=2)
        received = []
        a = fabric.attach_host(0, 0x0A000001)
        c = fabric.attach_host(1, 0x0A010001)
        c.attach("x", received.append)
        probe = _packet(0x0A000001, 0x0A010001, sport=1000)
        victim = fabric.spine_for(probe)
        fabric.fail_spine(victim)
        fabric.port(0x0A000001).send("x", probe)
        loop.run(until=1e-3)
        assert received == []
        assert fabric.stats()["spine"]["blackholed"] == 1
        fabric.reconverge()
        fabric.port(0x0A000001).send("x", _packet(0x0A000001, 0x0A010001, sport=1000))
        loop.run(until=2e-3)
        assert len(received) == 1
        assert fabric.stats()["spine"]["blackholed"] == 1  # no new losses

    def test_kill_reconverge_sequence_is_deterministic(self):
        def run_once():
            loop, fabric = self._fabric()
            mapping = []
            fabric.fail_spine(1)
            fabric.reconverge(salt=5)
            mapping.append([fabric.spine_for(p) for p in self._flows()])
            fabric.restore_spine(1)
            fabric.fail_spine(3)
            fabric.reconverge(salt=9)
            mapping.append([fabric.spine_for(p) for p in self._flows()])
            return mapping, fabric.routing_spines(), fabric.reconvergences

        assert run_once() == run_once()


class TestClosTestbed:
    def test_construction(self):
        bed = ClosTestbed.leaf_spine(num_racks=2, hosts_per_rack=2, num_spines=2)
        assert [h.name for h in bed.hosts] == ["r0h0", "r0h1", "r1h0", "r1h1"]
        assert bed.host(1, 0).name == "r1h0"
        # Rack is readable off the address: 10.(1+r).0.(1+i).
        assert bed.host(1, 1).addr == (10 << 24) | (2 << 16) | 2
        for host in bed.hosts:
            rack = bed.fabric.rack_of(host.addr)
            assert bed.host(rack, 0).addr >> 16 == host.addr >> 16

    def test_cross_rack_rpc_uses_spines(self):
        bed = ClosTestbed.leaf_spine(num_racks=2, hosts_per_rack=1, num_spines=2)
        server, client = bed.host(1, 0), bed.host(0, 0)
        st = HomaTransport(server)
        ssock = HomaSocket(st, 7000)

        def echo():
            thread = server.app_thread(0)
            rpc = yield from ssock.recv_request(thread)
            yield from ssock.reply(thread, rpc, rpc.payload[::-1])

        bed.loop.process(echo())

        def call():
            ct = HomaTransport(client)
            sock = HomaSocket(ct, client.alloc_port())
            reply = yield from sock.call(
                client.app_thread(0), server.addr, 7000, b"spine"
            )
            assert reply == b"enips"

        done = bed.loop.process(call())
        bed.run(until=1.0)
        assert done.ok
        assert sum(bed.fabric.spine_spread()) > 0

    def test_enable_obs_idempotent_with_spine_gauges(self):
        bed = ClosTestbed.leaf_spine(num_racks=2, hosts_per_rack=1, num_spines=2)
        obs = bed.enable_obs()
        assert bed.enable_obs() is obs
        snap = obs.snapshot()
        assert "clos.spine0.packets" in snap["metrics"]
        assert "clos.spine1.packets" in snap["metrics"]

    def test_enable_ctrl_idempotent(self):
        bed = ClosTestbed.leaf_spine(num_racks=2, hosts_per_rack=1, num_spines=2)
        planes = bed.enable_ctrl()
        assert len(planes) == len(bed.hosts)
        assert bed.enable_ctrl() is planes

    def test_install_faults_on_downlinks(self):
        bed = ClosTestbed.leaf_spine(num_racks=2, hosts_per_rack=1, num_spines=2)
        bed.install_faults(FaultConfig(drop_rate=1.0))
        assert set(bed.fault_injectors) == {h.addr for h in bed.hosts}
        dst = bed.host(1, 0)
        bed.fabric.leaves[1].inject(_packet(bed.host(0, 0).addr, dst.addr))
        bed.run(until=1e-3)
        stats = bed.fault_stats()
        assert stats[dst.name]["dropped"] == 1
        assert stats[dst.name]["delivered"] == 0
