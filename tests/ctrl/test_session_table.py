"""SessionTable: LRU/idle eviction, busy pinning, admission backpressure."""

import random

import pytest

from repro.core.endpoint import SmtEndpoint
from repro.crypto.ca import CertificateAuthority
from repro.crypto.cert import KEY_ALG_ECDSA
from repro.crypto.ecdsa import EcdsaKeyPair
from repro.ctrl import ControlPlane, CtrlConfig, SessionTable
from repro.errors import ProtocolError
from repro.sim.event_loop import EventLoop
from repro.testbed import Testbed
from repro.tls.handshake import HandshakeConfig, ServerCredentials


def make_table(**kw):
    loop = EventLoop()
    kw.setdefault("capacity", 3)
    return loop, SessionTable(loop, **kw)


def never_busy():
    return False


class TestLru:
    def test_insert_within_capacity(self):
        loop, table = make_table()
        for i in range(3):
            table.insert(("s", i), on_evict=lambda: None, busy=never_busy, now=0.0)
        assert len(table) == 3
        assert table.evicted_lru == 0

    def test_overflow_evicts_oldest(self):
        loop, table = make_table()
        evicted = []
        for i in range(5):
            table.insert(
                ("s", i),
                on_evict=lambda i=i: evicted.append(i),
                busy=never_busy,
                now=0.0,
            )
        assert evicted == [0, 1]
        assert ("s", 0) not in table and ("s", 4) in table
        assert table.evicted_lru == 2

    def test_touch_rescues_from_eviction(self):
        loop, table = make_table()
        evicted = []
        for i in range(3):
            table.insert(
                ("s", i),
                on_evict=lambda i=i: evicted.append(i),
                busy=never_busy,
                now=0.0,
            )
        table.touch(("s", 0))  # 1 is now the LRU candidate
        table.insert(("s", 3), on_evict=lambda: None, busy=never_busy, now=0.0)
        assert evicted == [1]

    def test_busy_entry_skipped(self):
        loop, table = make_table()
        evicted = []
        table.insert(("s", 0), lambda: evicted.append(0), busy=lambda: True, now=0.0)
        table.insert(("s", 1), lambda: evicted.append(1), busy=never_busy, now=0.0)
        table.insert(("s", 2), lambda: evicted.append(2), busy=never_busy, now=0.0)
        table.insert(("s", 3), lambda: evicted.append(3), busy=never_busy, now=0.0)
        assert evicted == [1]  # oldest, but 0 is pinned busy

    def test_all_busy_raises(self):
        loop, table = make_table(capacity=2)
        table.insert(("s", 0), lambda: None, busy=lambda: True, now=0.0)
        table.insert(("s", 1), lambda: None, busy=lambda: True, now=0.0)
        with pytest.raises(ProtocolError):
            table.insert(("s", 2), lambda: None, busy=never_busy, now=0.0)
        assert table.admission_refused == 1

    def test_deterministic_under_fixed_seed(self):
        # Same seeded insert/touch schedule -> identical eviction order.
        def run(seed):
            rng = random.Random(seed)
            _loop, table = make_table(capacity=4)
            evicted = []
            for i in range(32):
                if rng.random() < 0.3 and len(table):
                    table.touch(("s", rng.randrange(i)))
                table.insert(
                    ("s", i),
                    on_evict=lambda i=i: evicted.append(i),
                    busy=never_busy,
                    now=0.0,
                )
            return evicted

        assert run(1234) == run(1234)
        assert run(1234) != run(99)  # the schedule, not the table, is random


class TestIdleSweep:
    def test_idle_entries_swept(self):
        loop, table = make_table(capacity=8, idle_timeout=1e-3)
        evicted = []
        table.insert(("s", 0), lambda: evicted.append(0), busy=never_busy, now=0.0)
        loop.run(until=2e-3)
        assert evicted == [0]
        assert table.evicted_idle == 1
        table.stop()

    def test_touched_entry_survives(self):
        loop, table = make_table(capacity=8, idle_timeout=1e-3)
        table.insert(("s", 0), lambda: None, busy=never_busy, now=0.0)
        keeper = loop.every(0.5e-3, lambda: table.touch(("s", 0)))
        loop.run(until=5e-3)
        assert ("s", 0) in table
        keeper.cancel()
        table.stop()

    def test_busy_entry_not_swept(self):
        loop, table = make_table(capacity=8, idle_timeout=1e-3)
        table.insert(("s", 0), lambda: None, busy=lambda: True, now=0.0)
        loop.run(until=5e-3)
        assert ("s", 0) in table
        table.stop()


class TestAdmission:
    def test_admit_with_room(self):
        _loop, table = make_table(capacity=1)
        assert table.admit()

    def test_admit_full_but_evictable(self):
        _loop, table = make_table(capacity=1)
        table.insert(("s", 0), lambda: None, busy=never_busy, now=0.0)
        assert table.admit()

    def test_refuse_full_and_busy(self):
        _loop, table = make_table(capacity=1)
        table.insert(("s", 0), lambda: None, busy=lambda: True, now=0.0)
        assert not table.admit()
        assert table.admission_refused == 1


class TestEndpointBackpressure:
    def test_refused_handshake_raises_at_client(self):
        # A server whose table is saturated with busy sessions refuses the
        # CHLO flight; the client sees a ProtocolError, not a hang.
        rng = random.Random(11)
        ca = CertificateAuthority("dc-root", rng)
        key = EcdsaKeyPair.generate(rng)
        leaf = ca.issue("server", KEY_ALG_ECDSA, key.public_bytes())
        creds = ServerCredentials(chain=ca.chain_for(leaf), signing_key=key)
        roots = (ca.certificate,)

        bed = Testbed.back_to_back()
        ctrl = ControlPlane(
            bed.server,
            random.Random(12),
            config=CtrlConfig(session_capacity=1, prefill=False),
        )
        # Saturate: one pinned-busy entry fills the table for good.
        ctrl.table.insert(("pin",), lambda: None, busy=lambda: True, now=0.0)

        sep = SmtEndpoint(bed.server, 7000, ctrl=ctrl)
        cep = SmtEndpoint(bed.client, bed.client.alloc_port())
        sep.listen(
            bed.server.app_thread(0), creds,
            lambda: HandshakeConfig(rng=random.Random(13), trust_roots=roots),
        )

        outcome = {}

        def client():
            thread = bed.client.app_thread(0)
            try:
                yield from cep.connect(
                    thread, bed.server.addr, 7000,
                    HandshakeConfig(rng=random.Random(14), server_name="server",
                                    trust_roots=roots),
                )
            except ProtocolError as exc:
                outcome["error"] = str(exc)

        done = bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert done.triggered and done.ok
        assert "refused" in outcome["error"]
        assert ctrl.table.admission_refused >= 1
