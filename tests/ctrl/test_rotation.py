"""Ticket rotation, grace windows, client refresh, DNS lifecycle (§4.5.3)."""

import random

import pytest

from repro.core.zero_rtt import ZeroRttClient, ZeroRttServer, share_fingerprint
from repro.crypto.ca import CertificateAuthority
from repro.crypto.cert import KEY_ALG_ECDSA
from repro.crypto.ecdsa import EcdsaKeyPair
from repro.ctrl import SharedShareRotator, TicketCache, TicketRotator
from repro.dns.resolver import InternalDns
from repro.errors import ProtocolError
from repro.sim.event_loop import EventLoop
from repro.testbed import Testbed


@pytest.fixture(scope="module")
def pki():
    rng = random.Random(1)
    ca = CertificateAuthority("dc-root", rng)
    key = EcdsaKeyPair.generate(rng)
    leaf = ca.issue("server", KEY_ALG_ECDSA, key.public_bytes())
    return ca, ca.chain_for(leaf), key


def make_zserver(pki, lifetime=10.0, grace_window=0.0, seed=5):
    _ca, chain, key = pki
    return ZeroRttServer(
        "server", chain, key, random.Random(seed),
        lifetime=lifetime, grace_window=grace_window,
    )


class TestRotator:
    def test_start_publishes_immediately(self, pki):
        loop = EventLoop()
        dns = InternalDns()
        rotator = TicketRotator(loop, make_zserver(pki), dns, "svc", period=1.0)
        rotator.start()
        assert rotator.rotations == 1
        assert dns.query("svc", loop.now) is not None

    def test_republishes_every_period(self, pki):
        loop = EventLoop()
        dns = InternalDns()
        zserver = make_zserver(pki, lifetime=1.0)
        rotator = TicketRotator(loop, zserver, dns, "svc")  # period = lifetime
        rotator.start()
        first_share = zserver.long_term.public_bytes()
        loop.run(until=3.5)
        rotator.stop()
        assert rotator.rotations == 4  # t = 0, 1, 2, 3
        assert zserver.long_term.public_bytes() != first_share
        # The published ticket always carries the *current* share.
        ticket = dns.query("svc", loop.now)
        assert ticket.long_term_share == zserver.long_term.public_bytes()

    def test_stop_freezes_schedule(self, pki):
        loop = EventLoop()
        rotator = TicketRotator(
            loop, make_zserver(pki), InternalDns(), "svc", period=1.0
        )
        rotator.start()
        rotator.stop()
        loop.run(until=10.0)
        assert rotator.rotations == 1

    def test_grace_knob_configures_server(self, pki):
        zserver = make_zserver(pki)
        TicketRotator(
            EventLoop(), zserver, InternalDns(), "svc", period=1.0, grace=0.25
        )
        assert zserver.grace_window == 0.25


class TestGraceWindow:
    """§4.5.3: after rotation the previous share works briefly, then never."""

    def _client_keys(self, pki, ticket, now, seed=9):
        ca, _chain, _key = pki
        client = ZeroRttClient(ticket, (ca.certificate,), now=now,
                               rng=random.Random(seed))
        return client.start()

    def test_previous_share_accepted_inside_grace(self, pki):
        zserver = make_zserver(pki, lifetime=10.0, grace_window=2.0)
        old_ticket = zserver.rotate(now=0.0)
        share, chlo_random, cw, _sw, _ops = self._client_keys(pki, old_ticket, 0.5)
        zserver.rotate(now=1.0)  # grace until 3.0
        got_cw, _got_sw, _trace = zserver.accept_zero_rtt(
            share, chlo_random, now=2.0,
            client_share_fp=share_fingerprint(old_ticket.long_term_share),
        )
        assert zserver.grace_accepts == 1
        # Keys agree: the server really used the previous share.
        assert got_cw.key == cw.key

    def test_stale_share_refused_outside_grace(self, pki):
        zserver = make_zserver(pki, lifetime=10.0, grace_window=2.0)
        old_ticket = zserver.rotate(now=0.0)
        share, chlo_random, _cw, _sw, _ops = self._client_keys(pki, old_ticket, 0.5)
        zserver.rotate(now=1.0)  # grace until 3.0
        with pytest.raises(ProtocolError, match="grace window"):
            zserver.accept_zero_rtt(
                share, chlo_random, now=4.0,
                client_share_fp=share_fingerprint(old_ticket.long_term_share),
            )
        assert zserver.grace_accepts == 0

    def test_stale_share_refused_when_no_grace_configured(self, pki):
        zserver = make_zserver(pki, lifetime=10.0, grace_window=0.0)
        old_ticket = zserver.rotate(now=0.0)
        share, chlo_random, _cw, _sw, _ops = self._client_keys(pki, old_ticket, 0.5)
        zserver.rotate(now=1.0)
        with pytest.raises(ProtocolError, match="stale"):
            zserver.accept_zero_rtt(
                share, chlo_random, now=1.5,
                client_share_fp=share_fingerprint(old_ticket.long_term_share),
            )

    def test_current_share_unaffected_by_grace(self, pki):
        zserver = make_zserver(pki, lifetime=10.0, grace_window=2.0)
        zserver.rotate(now=0.0)
        ticket = zserver.rotate(now=1.0)
        share, chlo_random, cw, _sw, _ops = self._client_keys(pki, ticket, 1.5)
        got_cw, _got_sw, _trace = zserver.accept_zero_rtt(
            share, chlo_random, now=2.0,
            client_share_fp=share_fingerprint(ticket.long_term_share),
        )
        assert got_cw.key == cw.key
        assert zserver.grace_accepts == 0

    def test_no_fingerprint_keeps_old_wire_behaviour(self, pki):
        # Clients that don't attach a fingerprint get the pre-grace
        # behaviour: the server derives against its current share.
        zserver = make_zserver(pki, lifetime=10.0, grace_window=2.0)
        ticket = zserver.rotate(now=0.0)
        share, chlo_random, cw, _sw, _ops = self._client_keys(pki, ticket, 0.5)
        got_cw, _got_sw, _trace = zserver.accept_zero_rtt(
            share, chlo_random, now=1.0
        )
        assert got_cw.key == cw.key


class TestTicketCache:
    def test_fresh_ticket_is_a_cache_hit(self, pki):
        ca, _chain, _key = pki
        loop = EventLoop()
        dns = InternalDns()
        rotator = TicketRotator(
            loop, make_zserver(pki, lifetime=100.0), dns, "svc"
        )
        rotator.start()
        cache = TicketCache(dns, (ca.certificate,), refresh_margin=10.0)

        def body():
            t1 = yield from cache.get("svc", loop)
            t2 = yield from cache.get("svc", loop)
            assert t1 is t2

        done = loop.process(body())
        loop.run(until=1.0)
        assert done.triggered and done.ok, getattr(done, "value", None)
        assert cache.refreshes == 1 and cache.hits == 1
        rotator.stop()

    def test_refreshes_before_expiry(self, pki):
        ca, _chain, _key = pki
        loop = EventLoop()
        dns = InternalDns()
        zserver = make_zserver(pki, lifetime=10.0)
        rotator = TicketRotator(loop, zserver, dns, "svc")
        rotator.start()
        cache = TicketCache(dns, (ca.certificate,), refresh_margin=4.0)
        seen = []

        def body():
            t1 = yield from cache.get("svc", loop)  # not_after = 10
            seen.append(t1)
            # now 11: 11 + 4 > 10 -> stale; the rotator republished at 10,
            # so the refetch returns the freshly-rotated ticket.
            yield loop.timeout(11.0)
            t2 = yield from cache.get("svc", loop)
            seen.append(t2)

        done = loop.process(body())
        loop.run(until=20.0)
        rotator.stop()
        assert done.triggered and done.ok, getattr(done, "value", None)
        assert cache.refreshes == 2
        assert seen[0] is not seen[1]
        assert seen[1].not_after > seen[0].not_after

    def test_invalidate_forces_refetch(self, pki):
        ca, _chain, _key = pki
        loop = EventLoop()
        dns = InternalDns()
        rotator = TicketRotator(
            loop, make_zserver(pki, lifetime=100.0), dns, "svc"
        )
        rotator.start()
        cache = TicketCache(dns, (ca.certificate,))
        cache_queries = []

        def body():
            yield from cache.get("svc", loop)
            cache.invalidate("svc")
            yield from cache.get("svc", loop)
            cache_queries.append(dns.queries)

        done = loop.process(body())
        loop.run(until=1.0)
        rotator.stop()
        assert done.triggered and done.ok
        assert cache.refreshes == 2 and cache_queries == [2]


class TestTicketCacheStalenessRace:
    """Regression: a refresh racing the record's TTL degrades, never raises.

    ``InternalDns._reap`` removes an expired record the moment any query
    touches the table; a :class:`TicketCache` refresh *inside* its
    ``refresh_margin`` can therefore find nothing to fetch while the
    cached ticket itself is still verifiable.  ``get`` must serve the
    cached ticket through that window and return ``None`` (1-RTT
    fallback) once the ticket expires too -- raising here would turn a
    routine replica failover into a client-visible error.
    """

    def _cache_with_expired_record(self, pki, loop):
        ca, _chain, _key = pki
        dns = InternalDns()
        zserver = make_zserver(pki, lifetime=10.0)
        # One publish with a TTL far shorter than the share lifetime:
        # the record dies at t=2, the ticket stays valid until t=10.
        rotator = TicketRotator(loop, zserver, dns, "svc", period=100.0, ttl=2.0)
        rotator.start()
        return dns, TicketCache(dns, (ca.certificate,), refresh_margin=8.0)

    def test_reaped_record_inside_margin_serves_cached_ticket(self, pki):
        loop = EventLoop()
        _dns, cache = self._cache_with_expired_record(pki, loop)
        got = []

        def body():
            t1 = yield from cache.get("svc", loop)  # fills the cache
            yield loop.timeout(5.0)
            # now=5: margin forces a refresh, but the record expired at 2
            # -- the cached ticket is still good until 10, so it is served.
            t2 = yield from cache.get("svc", loop)
            got.extend([t1, t2])

        done = loop.process(body())
        loop.run(until=6.0)
        assert done.triggered and done.ok, getattr(done, "value", None)
        assert got[1] is got[0]
        assert cache.stale_served == 1
        assert cache.unavailable == 0

    def test_expired_ticket_returns_none_for_1rtt_fallback(self, pki):
        loop = EventLoop()
        _dns, cache = self._cache_with_expired_record(pki, loop)
        got = []

        def body():
            yield from cache.get("svc", loop)
            yield loop.timeout(11.0)  # past the ticket's own not_after
            got.append((yield from cache.get("svc", loop)))
            # The dead entry was dropped: the next miss is also clean.
            got.append((yield from cache.get("svc", loop)))

        done = loop.process(body())
        loop.run(until=12.0)
        assert done.triggered and done.ok, getattr(done, "value", None)
        assert got == [None, None]
        assert cache.unavailable == 2
        assert cache.stale_served == 0

    def test_explicit_reap_then_get_never_raises(self, pki):
        loop = EventLoop()
        dns, cache = self._cache_with_expired_record(pki, loop)

        def body():
            yield from cache.get("svc", loop)
            yield loop.timeout(5.0)
            # Another name's publish reaps the expired "svc" record
            # first -- the exact interleaving the original bug hit.
            dns.publish("other", 1, loop.now, ttl=1.0)
            assert "svc" not in dns._records
            t = yield from cache.get("svc", loop)
            assert t is not None  # cached ticket still verifiable
            yield loop.timeout(6.0)  # now=11: nothing usable remains
            t = yield from cache.get("svc", loop)
            assert t is None

        done = loop.process(body())
        loop.run(until=12.0)
        assert done.triggered and done.ok, getattr(done, "value", None)
        assert cache.stale_served == 1 and cache.unavailable == 1


class TestSharedShareRotator:
    def _zservers(self, pki, n, lifetime=10.0, grace=2.0):
        return [
            make_zserver(pki, lifetime=lifetime, grace_window=grace, seed=50 + i)
            for i in range(n)
        ]

    def test_all_replicas_hold_the_same_share(self, pki):
        loop = EventLoop()
        dns = InternalDns()
        zservers = self._zservers(pki, 3)
        rotator = SharedShareRotator(
            loop, zservers, dns, "svc", rng=random.Random(3), period=1.0
        )
        rotator.start()
        shares = {z.long_term.public_bytes() for z in zservers}
        assert len(shares) == 1
        ticket = dns.query("svc", loop.now)
        assert ticket.long_term_share in shares

    def test_cross_replica_ticket_acceptance(self, pki):
        ca, _chain, _key = pki
        loop = EventLoop()
        dns = InternalDns()
        zservers = self._zservers(pki, 2)
        SharedShareRotator(
            loop, zservers, dns, "svc", rng=random.Random(3), period=1.0
        ).start()
        ticket = dns.query("svc", loop.now)
        client = ZeroRttClient(ticket, (ca.certificate,), now=0.1,
                               rng=random.Random(4))
        share, chlo_random, cw, _sw, _ops = client.start()
        # Accepted by the *other* replica, not just the minter.
        got_cw, _got_sw, _trace = zservers[1].accept_zero_rtt(
            share, chlo_random, now=0.2,
            client_share_fp=share_fingerprint(ticket.long_term_share),
        )
        assert got_cw.key == cw.key

    def test_dead_replica_misses_install_until_resync(self, pki):
        loop = EventLoop()
        dns = InternalDns()
        zservers = self._zservers(pki, 2)
        up = {0: True, 1: False}
        rotator = SharedShareRotator(
            loop, zservers, dns, "svc", rng=random.Random(3), period=1.0,
            up_fn=lambda i: up[i],
        )
        rotator.start()
        assert rotator.missed_installs == 1
        assert zservers[1].long_term is None or (
            zservers[1].long_term.public_bytes()
            != rotator.current.public_bytes()
        )
        up[1] = True
        rotator.resync(zservers[1])
        assert rotator.resyncs == 1
        assert (zservers[1].long_term.public_bytes()
                == rotator.current.public_bytes())
        # Idempotent: a second resync is a no-op.
        rotator.resync(zservers[1])
        assert rotator.resyncs == 1

    def test_all_replicas_down_publishes_nothing(self, pki):
        loop = EventLoop()
        dns = InternalDns()
        rotator = SharedShareRotator(
            loop, self._zservers(pki, 2), dns, "svc",
            rng=random.Random(3), period=1.0, up_fn=lambda i: False,
        )
        rotator.start()
        assert rotator.rotations == 0
        assert rotator.missed_installs == 2
        with pytest.raises(ProtocolError, match="no DNS record"):
            dns.query("svc", loop.now)

    def test_empty_replica_set_rejected(self):
        with pytest.raises(ProtocolError):
            SharedShareRotator(EventLoop(), [], InternalDns(), "svc")


class TestDnsLifecycle:
    """Satellites: schedulable lookup latency + expired-record reaping."""

    def test_resolve_charges_lookup_latency(self):
        loop = EventLoop()
        dns = InternalDns(lookup_latency=50e-6)
        dns.publish("svc", "payload", now=0.0, ttl=100.0)
        at = {}

        def body():
            result = yield from dns.resolve("svc", loop)
            at["t"] = loop.now
            assert result == "payload"

        done = loop.process(body())
        loop.run(until=1.0)
        assert done.triggered and done.ok, getattr(done, "value", None)
        assert at["t"] == pytest.approx(50e-6)

    def test_zero_latency_resolve_is_synchronous(self):
        loop = EventLoop()
        dns = InternalDns()  # lookup_latency = 0: prefetched-ticket path
        dns.publish("svc", "payload", now=0.0, ttl=100.0)

        def body():
            result = yield from dns.resolve("svc", loop)
            assert loop.now == 0.0  # no events were scheduled
            return result

        done = loop.process(body())
        loop.run(until=1.0)
        assert done.ok and done.value == "payload"

    def test_expired_record_raises(self):
        dns = InternalDns()
        dns.publish("svc", "payload", now=0.0, ttl=1.0)
        with pytest.raises(ProtocolError, match="expired"):
            dns.query("svc", now=5.0)

    def test_missing_record_raises(self):
        dns = InternalDns()
        with pytest.raises(ProtocolError, match="no DNS record"):
            dns.query("svc", now=0.0)

    def test_query_reaps_expired_records(self):
        dns = InternalDns()
        dns.publish("old", 1, now=0.0, ttl=1.0)
        dns.publish("fresh", 2, now=0.0, ttl=100.0)
        assert dns.query("fresh", now=5.0) == 2
        assert dns.expired_reaped == 1
        assert "old" not in dns._records

    def test_publish_reaps_expired_records(self):
        dns = InternalDns()
        dns.publish("old", 1, now=0.0, ttl=1.0)
        dns.publish("other", 2, now=5.0, ttl=1.0)
        assert dns.expired_reaped == 1
        assert "old" not in dns._records and "other" in dns._records

    def test_records_gauge(self):
        bed = Testbed.back_to_back()
        obs = bed.enable_obs()
        dns = InternalDns()
        dns.bind_obs(obs, name="dns")
        dns.publish("a", 1, now=0.0, ttl=1.0)
        dns.publish("b", 2, now=0.0, ttl=100.0)
        snap = obs.metrics.snapshot()
        assert snap["dns.records"] == 2
        dns.query("b", now=5.0)  # reaps "a"
        snap = obs.metrics.snapshot()
        assert snap["dns.records"] == 1
        assert snap["dns.queries"] == 1
        assert snap["dns.expired_reaped"] == 1
