"""Partitioned control plane: hard per-tenant compartments.

The two properties the tenancy subsystem's control-plane half rests on,
fuzzed across >= 30 seeds each:

- churn confined: eviction in one tenant's partition never evicts
  another tenant's sessions, whatever the interleaving;
- backpressure charged to the causer: a tenant saturating its own
  compartment gets refused while every other tenant keeps being
  admitted, and the refusal counters land on the right tenant.
"""

import random

import pytest

from repro.ctrl import PartitionedKeyPool, PartitionedSessionTable
from repro.ctrl.partition import split_slots
from repro.errors import ProtocolError
from repro.sim.event_loop import EventLoop

SEEDS = range(30)


def never_busy():
    return False


class TestSplitSlots:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_partition_of_total_with_floors(self, seed):
        rng = random.Random(seed)
        tenants = [f"t{i}" for i in range(rng.randrange(1, 9))]
        weights = {name: rng.choice([0.1, 0.5, 1.0, 2.0, 7.5]) for name in tenants}
        total = rng.randrange(len(tenants), 200)
        alloc = split_slots(total, weights)
        assert sum(alloc.values()) == total
        assert all(slots >= 1 for slots in alloc.values())
        assert alloc == split_slots(total, weights)  # deterministic

    def test_weight_proportionality(self):
        alloc = split_slots(100, {"a": 3.0, "b": 1.0})
        assert alloc == {"a": 75, "b": 25}

    def test_too_few_slots_rejected(self):
        with pytest.raises(ProtocolError):
            split_slots(1, {"a": 1.0, "b": 1.0})

    def test_tiny_weights_still_get_a_slot(self):
        alloc = split_slots(4, {"a": 100.0, "b": 0.001, "c": 0.001, "d": 0.001})
        assert alloc["b"] == alloc["c"] == alloc["d"] == 1
        assert alloc["a"] == 1


class TestEvictionIsolation:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_churn_in_one_partition_never_evicts_another(self, seed):
        rng = random.Random(seed)
        loop = EventLoop()
        table = PartitionedSessionTable(
            loop, {"victim": 1.0, "aggr": 1.0}, capacity=8
        )
        evicted: dict[str, list] = {"victim": [], "aggr": []}
        # The victim settles in well under its compartment's capacity...
        for i in range(table.partition_capacity("victim") - 1):
            table.insert(
                "victim", ("v", i),
                on_evict=lambda i=i: evicted["victim"].append(i),
                busy=never_busy, now=0.0,
            )
        victim_before = table.sessions("victim")
        # ...then the aggressor churns far past its own capacity.
        for i in range(rng.randrange(20, 60)):
            table.insert(
                "aggr", ("a", i),
                on_evict=lambda i=i: evicted["aggr"].append(i),
                busy=never_busy, now=0.0,
            )
            if rng.random() < 0.3:
                table.touch("aggr", ("a", i))
        stats = table.stats()
        assert evicted["victim"] == []
        assert stats["victim"]["evicted_lru"] == 0
        assert table.sessions("victim") == victim_before
        assert stats["aggr"]["evicted_lru"] == len(evicted["aggr"]) > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_interleaved_churn_keeps_compartments_disjoint(self, seed):
        rng = random.Random(seed)
        loop = EventLoop()
        names = ["a", "b", "c"]
        table = PartitionedSessionTable(
            loop, {n: rng.choice([1.0, 2.0]) for n in names}, capacity=9
        )
        evicted_by: dict[str, set] = {n: set() for n in names}
        live: dict[str, set] = {n: set() for n in names}
        for i in range(200):
            tenant = rng.choice(names)
            key = (tenant, i)
            table.insert(
                tenant, key,
                on_evict=lambda t=tenant, k=key: (
                    evicted_by[t].add(k), live[t].discard(k)
                ),
                busy=never_busy, now=0.0,
            )
            live[tenant].add(key)
        for tenant in names:
            # Every eviction callback fired was for the tenant's own keys,
            # and the survivors exactly fill what the counters claim.
            assert all(k[0] == tenant for k in evicted_by[tenant])
            assert table.sessions(tenant) == len(live[tenant])
            assert len(live[tenant]) <= table.partition_capacity(tenant)


class TestBackpressureCharging:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_refusals_land_on_the_saturating_tenant(self, seed):
        rng = random.Random(seed)
        loop = EventLoop()
        table = PartitionedSessionTable(
            loop, {"noisy": 1.0, "quiet": 1.0}, capacity=rng.randrange(4, 12)
        )
        # The noisy tenant pins every slot of its own compartment busy.
        for i in range(table.partition_capacity("noisy")):
            table.insert(
                "noisy", ("n", i), on_evict=lambda: None,
                busy=lambda: True, now=0.0,
            )
        refusals = rng.randrange(1, 6)
        for _ in range(refusals):
            assert not table.admit("noisy")
        with pytest.raises(ProtocolError):
            table.insert(
                "noisy", ("n", 99), on_evict=lambda: None,
                busy=never_busy, now=0.0,
            )
        # The quiet tenant is untouched: admitted, insertable, clean counters.
        assert table.admit("quiet")
        table.insert(
            "quiet", ("q", 0), on_evict=lambda: None, busy=never_busy, now=0.0
        )
        stats = table.stats()
        assert stats["noisy"]["admission_refused"] == refusals + 1
        assert stats["quiet"]["admission_refused"] == 0
        assert stats["quiet"]["sessions"] == 1


class TestKeyPoolPartitions:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_draws_charged_and_streams_independent(self, seed):
        def draw_b_sequence(a_draws: int):
            loop = EventLoop()
            pool = PartitionedKeyPool(
                loop, {"a": 1.0, "b": 1.0}, seed=seed, capacity=8,
                prefill=True,
            )
            for _ in range(a_draws):
                pool.take_or_generate("a")
            seq = [pool.take_or_generate("b").public_bytes() for _ in range(3)]
            pool.cancel_refill()
            return seq, pool.stats()

        rng = random.Random(seed)
        a_draws = rng.randrange(0, 12)
        seq_drained, stats = draw_b_sequence(a_draws)
        seq_quiet, _ = draw_b_sequence(0)
        # b's key sequence is identical whether or not a drew first.
        assert seq_drained == seq_quiet
        assert stats["a"]["taken"] + stats["a"]["misses"] == a_draws
        assert stats["b"]["taken"] + stats["b"]["misses"] == 3

    def test_exhaustion_is_per_tenant(self):
        loop = EventLoop()
        pool = PartitionedKeyPool(
            loop, {"a": 1.0, "b": 1.0}, seed=7, capacity=4, prefill=True
        )
        for _ in range(10):
            pool.take_or_generate("a")
        # a has outrun its standby stock; b still draws its prefill O(1).
        assert pool.stats()["a"]["misses"] > 0
        pool.take_or_generate("b")
        assert pool.stats()["b"]["misses"] == 0
        pool.cancel_refill()
