"""Proactive rekeying before message-ID exhaustion (§4.5.2)."""

import random

import pytest

from repro.core.endpoint import SmtEndpoint
from repro.core.seqspace import BitAllocation, MessageIdSpace
from repro.crypto.ca import CertificateAuthority
from repro.crypto.cert import KEY_ALG_ECDSA
from repro.crypto.ecdsa import EcdsaKeyPair
from repro.ctrl import CtrlConfig
from repro.errors import ProtocolError
from repro.testbed import Testbed
from repro.tls.handshake import HandshakeConfig, ServerCredentials


@pytest.fixture(scope="module")
def pki():
    rng = random.Random(1)
    ca = CertificateAuthority("dc-root", rng)
    key = EcdsaKeyPair.generate(rng)
    leaf = ca.issue("server", KEY_ALG_ECDSA, key.public_bytes())
    return ca, ServerCredentials(chain=ca.chain_for(leaf), signing_key=key)


class TestMessageIdSpace:
    def test_allocates_even_ids(self):
        space = MessageIdSpace(BitAllocation(), first_msg_id=10, capacity=8)
        assert [space.alloc() for _ in range(4)] == [10, 12, 14, 16]

    def test_exhaustion_raises(self):
        space = MessageIdSpace(BitAllocation(), capacity=6)
        for _ in range(3):
            space.alloc()
        with pytest.raises(ProtocolError, match="exhausted"):
            space.alloc()

    def test_watermark_fires_once_per_epoch(self):
        fired = []
        space = MessageIdSpace(
            BitAllocation(), capacity=8, watermark_fraction=0.5
        )
        space.on_high_watermark = lambda: fired.append(space.epoch)
        space.alloc()  # -> 4, below watermark 6
        assert fired == []
        space.alloc()  # -> 6: fires
        space.alloc()
        assert fired == [0]
        space.reset()
        space.alloc()
        space.alloc()
        assert fired == [0, 1]

    def test_reset_restarts_slice(self):
        space = MessageIdSpace(BitAllocation(), first_msg_id=100, capacity=6)
        assert space.alloc() == 100
        space.reset()
        assert space.alloc() == 100
        assert space.epoch == 1 and space.resets == 1
        assert space.total_allocated == 2

    def test_validation(self):
        with pytest.raises(ProtocolError, match="even"):
            MessageIdSpace(BitAllocation(), first_msg_id=3)
        with pytest.raises(ProtocolError, match="does not fit"):
            MessageIdSpace(BitAllocation(msg_id_bits=4), first_msg_id=14, capacity=8)
        with pytest.raises(ProtocolError, match="watermark_fraction"):
            MessageIdSpace(BitAllocation(), watermark_fraction=0.0)


def build_managed(pki, config, client_rpc_thread=1, seed=21):
    """Two ctrl-managed endpoints with the server listening and echoing."""
    ca, creds = pki
    roots = (ca.certificate,)
    bed = Testbed.back_to_back()
    cc, sc = bed.enable_ctrl(config=config, seed=seed)
    sep = SmtEndpoint(bed.server, 7000, ctrl=sc)
    cep = SmtEndpoint(bed.client, bed.client.alloc_port(), ctrl=cc)
    # Background rekeys need an app thread to charge their CPU to.
    cc.adopt(cep, rekey_thread=bed.client.app_thread(client_rpc_thread))
    sep.listen(
        bed.server.app_thread(0), creds,
        lambda: sc.handshake_config(trust_roots=roots),
    )

    def echo():
        thread = bed.server.app_thread(1)
        while True:
            rpc = yield from sep.socket.recv_request(thread)
            yield from sep.socket.reply(thread, rpc, rpc.payload)

    bed.loop.process(echo())
    return bed, cep, sep, cc, sc, roots


SMALL_LANES = CtrlConfig(
    lane_size=64,
    rekey_watermark_fraction=0.5,
    ecdh_pool_capacity=8,
    ecdh_low_watermark=2,
)


class TestTransparentRekey:
    def test_session_rekeys_past_watermark_without_errors(self, pki):
        bed, cep, sep, cc, sc, roots = build_managed(pki, SMALL_LANES)
        replies = []

        def client():
            thread = bed.client.app_thread(0)
            yield from cep.connect(
                thread, bed.server.addr, 7000,
                cc.handshake_config(server_name="server", trust_roots=roots),
            )
            # 60 calls through a 31-id lane: impossible without rekeys.
            for i in range(60):
                payload = bytes([i]) * 32
                reply = yield from cep.socket.call(
                    thread, bed.server.addr, 7000, payload
                )
                replies.append(reply == payload)

        done = bed.loop.process(client())
        bed.loop.run(until=2.0)
        assert done.triggered and done.ok, getattr(done, "value", None)
        assert all(replies) and len(replies) == 60

        session = cep.session_for(bed.server.addr, 7000)
        assert session.rekeys == 4
        assert session.id_space.resets == 4
        assert cc.rekeys.scheduled == 4 and cc.rekeys.completed == 4
        assert cc.rekeys.inflight == 0
        # The server rolled its copy of the session in lockstep.
        assert sep.session_for(bed.client.addr, cep.port).rekeys == 4

    def test_rekey_visible_through_ctrl_metrics(self, pki):
        bed, cep, sep, cc, sc, roots = build_managed(pki, SMALL_LANES)
        bed.enable_obs()

        def client():
            thread = bed.client.app_thread(0)
            yield from cep.connect(
                thread, bed.server.addr, 7000,
                cc.handshake_config(server_name="server", trust_roots=roots),
            )
            for _ in range(20):
                yield from cep.socket.call(thread, bed.server.addr, 7000, b"m")

        done = bed.loop.process(client())
        bed.loop.run(until=2.0)
        assert done.triggered and done.ok, getattr(done, "value", None)
        snap = bed.obs.metrics.snapshot()
        assert snap["client.ctrl.rekeys.completed"] >= 1
        assert snap["client.ctrl.msgid.resets"] >= 1
        assert snap["client.ctrl.rekeys.inflight"] == 0
        assert snap["client.ctrl.sessions"] == 1
        assert snap["client.ctrl.keypool.ecdh.taken"] >= 1

    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_property_managed_never_exhausts(self, pki, seed):
        # Property: wherever the watermark lands, a managed session rekeys
        # before its slice runs dry -- across seeds, never a ProtocolError.
        config = CtrlConfig(
            lane_size=16,  # 7 usable ids per epoch
            rekey_watermark_fraction=0.5,
            ecdh_pool_capacity=4,
            ecdh_low_watermark=1,
        )
        bed, cep, sep, cc, sc, roots = build_managed(pki, config, seed=seed)
        n = 20 + seed % 5

        def client():
            thread = bed.client.app_thread(0)
            yield from cep.connect(
                thread, bed.server.addr, 7000,
                cc.handshake_config(server_name="server", trust_roots=roots),
            )
            for i in range(n):
                yield from cep.socket.call(
                    thread, bed.server.addr, 7000, bytes([i % 251])
                )

        done = bed.loop.process(client())
        bed.loop.run(until=2.0)
        assert done.triggered and done.ok, getattr(done, "value", None)
        session = cep.session_for(bed.server.addr, 7000)
        assert session.rekeys >= 1
        assert session.id_space.total_allocated == n
        assert cc.rekeys.scheduled == cc.rekeys.completed

    def test_unmanaged_session_exhausts_with_protocol_error(self, pki):
        # The counterpart: same tiny slice, no manager watching it.
        ca, creds = pki
        roots = (ca.certificate,)
        bed = Testbed.back_to_back()
        sep = SmtEndpoint(bed.server, 7000)
        cep = SmtEndpoint(bed.client, bed.client.alloc_port())
        sep.listen(
            bed.server.app_thread(0), creds,
            lambda: HandshakeConfig(rng=random.Random(3), trust_roots=roots),
        )

        def echo():
            thread = bed.server.app_thread(1)
            while True:
                rpc = yield from sep.socket.recv_request(thread)
                yield from sep.socket.reply(thread, rpc, rpc.payload)

        bed.loop.process(echo())

        def client():
            thread = bed.client.app_thread(0)
            yield from cep.connect(
                thread, bed.server.addr, 7000,
                HandshakeConfig(rng=random.Random(4), server_name="server",
                                trust_roots=roots),
            )
            session = cep.session_for(bed.server.addr, 7000)
            session.id_space = MessageIdSpace(cep.allocation, capacity=6)
            for _ in range(4):  # only 3 ids fit
                yield from cep.socket.call(thread, bed.server.addr, 7000, b"m")

        done = bed.loop.process(client())
        bed.loop.run(until=2.0)
        assert done.triggered and not done.ok
        assert isinstance(done.value, ProtocolError)
        assert "exhausted" in str(done.value)


class TestForwardSecrecyUpgrade:
    def test_upgrade_to_fs_rolls_keys_and_resets_ids(self, pki):
        bed, cep, sep, cc, sc, roots = build_managed(pki, SMALL_LANES)
        checks = {}

        def client():
            thread = bed.client.app_thread(0)
            yield from cep.connect(
                thread, bed.server.addr, 7000,
                cc.handshake_config(server_name="server", trust_roots=roots),
            )
            session = cep.session_for(bed.server.addr, 7000)
            old_key = session.write_keys.key
            yield from cep.socket.call(thread, bed.server.addr, 7000, b"pre")
            (entry,) = cc.rekeys.entries
            yield from cc.rekeys.upgrade_to_fs(entry)
            checks["key_changed"] = session.write_keys.key != old_key
            checks["resets"] = session.id_space.resets
            reply = yield from cep.socket.call(
                thread, bed.server.addr, 7000, b"post-upgrade"
            )
            checks["echo"] = reply == b"post-upgrade"

        done = bed.loop.process(client())
        bed.loop.run(until=2.0)
        assert done.triggered and done.ok, getattr(done, "value", None)
        assert checks == {"key_changed": True, "resets": 1, "echo": True}
        assert cc.rekeys.fs_upgrades == 1
        # The ephemeral came from the standby pool, not inline generation.
        assert cc.ecdh_pool.taken >= 1
