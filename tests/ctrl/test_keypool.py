"""KeyPool: standby keys, watermark refill, miss accounting (§4.5.1)."""

import random

import pytest

from repro.crypto.ecdh import EcdhKeyPair
from repro.ctrl import KeyPool
from repro.errors import ProtocolError
from repro.sim.event_loop import EventLoop


def make_pool(**kw):
    loop = EventLoop()
    kw.setdefault("capacity", 8)
    kw.setdefault("low_watermark", 2)
    kw.setdefault("refill_batch", 4)
    pool = KeyPool(loop, random.Random(7), **kw)
    return loop, pool


class TestTake:
    def test_prefilled_to_capacity(self):
        _loop, pool = make_pool()
        assert pool.size == 8

    def test_take_returns_distinct_keypairs(self):
        _loop, pool = make_pool()
        a, b = pool.take(), pool.take()
        assert isinstance(a, EcdhKeyPair)
        assert a.public_bytes() != b.public_bytes()
        assert pool.taken == 2

    def test_miss_returns_none_and_counts(self):
        _loop, pool = make_pool(prefill=False)
        assert pool.take() is None
        assert pool.misses == 1

    def test_take_or_generate_never_misses(self):
        _loop, pool = make_pool(prefill=False)
        key = pool.take_or_generate()
        assert isinstance(key, EcdhKeyPair)


class TestRefill:
    def test_refills_to_capacity_after_drain(self):
        loop, pool = make_pool()
        for _ in range(8):
            assert pool.take() is not None
        assert pool.size == 0
        loop.run(until=1.0)
        assert pool.size == 8
        assert pool.refilled == 8
        assert pool.refill_ticks >= 2  # batches of 4

    def test_refill_only_arms_below_watermark(self):
        loop, pool = make_pool()
        pool.take()  # size 7, watermark 2: no refill armed
        loop.run(until=1.0)
        assert pool.size == 7
        assert pool.refilled == 0

    def test_refill_interval_is_respected(self):
        loop, pool = make_pool(refill_interval=1e-3)
        for _ in range(8):
            pool.take()
        loop.run(until=0.5e-3)
        assert pool.size == 0  # first tick not due yet
        loop.run(until=10e-3)
        assert pool.size == 8

    def test_cancel_refill(self):
        loop, pool = make_pool()
        for _ in range(8):
            pool.take()
        pool.cancel_refill()
        loop.run(until=1.0)
        assert pool.size == 0


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            make_pool(kind="rsa")

    def test_watermark_must_sit_below_capacity(self):
        with pytest.raises(ProtocolError):
            make_pool(capacity=4, low_watermark=4)

    def test_ecdsa_pool(self):
        _loop, pool = make_pool(kind="ecdsa", capacity=3, low_watermark=1)
        key = pool.take()
        assert key is not None and hasattr(key, "sign")

    def test_deterministic_under_fixed_seed(self):
        _l1, p1 = make_pool()
        _l2, p2 = make_pool()
        assert [k.public_bytes() for k in p1._keys] == [
            k.public_bytes() for k in p2._keys
        ]
