"""Property tests for the resilience primitives, seeded and exhaustive.

Each component carries one load-bearing invariant the incident machinery
relies on:

- :class:`RetryBudget`: the token count never exceeds capacity and never
  goes negative, under arbitrary interleavings of spends and refunds --
  so a retry storm's amplification is bounded by construction;
- :class:`CircuitBreaker`: the state machine only ever moves
  closed -> open -> half-open -> {closed, open}, trips after exactly
  ``failure_threshold`` consecutive failures, and half-open admits at
  most ``half_open_max_probes`` concurrent probes;
- :class:`HeartbeatMonitor`: a target that dies at ``t`` is declared
  down by ``t + interval * miss_threshold`` (the advertised
  ``detection_bound``), for every seed-randomised death time.
"""

from __future__ import annotations

import random

import pytest

from repro.resilience import (
    BackoffPolicy,
    BreakerState,
    CircuitBreaker,
    HeartbeatMonitor,
    RetryBudget,
)
from repro.sim.event_loop import EventLoop

SEEDS = list(range(30))


class TestRetryBudgetInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_tokens_never_exceed_cap_nor_go_negative(self, seed):
        rng = random.Random(seed)
        capacity = rng.choice([1.0, 4.0, 32.0, 100.0])
        refund = rng.choice([0.05, 0.1, 0.5, 1.0])
        budget = RetryBudget(capacity=capacity, refund=refund)
        spends = denials = 0
        for _ in range(500):
            if rng.random() < 0.6:
                if budget.try_spend():
                    spends += 1
                else:
                    denials += 1
            else:
                budget.on_success()
            assert -1e-9 <= budget.tokens <= capacity + 1e-9, (
                f"seed {seed}: tokens {budget.tokens} outside [0, {capacity}]"
            )
        assert budget.denied == denials
        # Conservation: tokens = initial - spends + granted refunds, and
        # refunds can never push past the cap.
        assert budget.tokens <= capacity

    def test_exhaustion_then_refund_cycle(self):
        budget = RetryBudget(capacity=2.0, refund=1.0)
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()  # empty: denied
        budget.on_success()
        assert budget.try_spend()  # refund re-enabled exactly one retry

    def test_denied_spend_does_not_consume(self):
        budget = RetryBudget(capacity=1.0, refund=0.0)
        assert budget.try_spend()
        before = budget.tokens
        assert not budget.try_spend()
        assert budget.tokens == before


class TestBackoffPolicy:
    def test_deterministic_per_seed_and_capped(self):
        a = BackoffPolicy(base=10e-6, multiplier=2.0, cap=100e-6, seed=3)
        b = BackoffPolicy(base=10e-6, multiplier=2.0, cap=100e-6, seed=3)
        da = [a.delay(i) for i in range(20)]
        db = [b.delay(i) for i in range(20)]
        assert da == db
        for i, d in enumerate(da):
            assert 0 < d <= 100e-6 * 1.2 + 1e-12, f"attempt {i} delay {d}"

    def test_growth_until_cap(self):
        policy = BackoffPolicy(base=10e-6, multiplier=2.0, cap=1.0, jitter=0.0)
        assert policy.delay(0) == pytest.approx(10e-6)
        assert policy.delay(3) == pytest.approx(80e-6)
        # Huge attempt numbers neither overflow nor exceed the cap.
        assert policy.delay(10_000) <= 1.0


class TestBreakerStateMachine:
    LEGAL = {
        (BreakerState.CLOSED, BreakerState.OPEN),
        (BreakerState.OPEN, BreakerState.HALF_OPEN),
        (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        (BreakerState.HALF_OPEN, BreakerState.OPEN),
    }

    @pytest.mark.parametrize("seed", SEEDS)
    def test_randomised_trace_only_takes_legal_transitions(self, seed):
        rng = random.Random(seed * 131 + 1)
        loop = EventLoop()
        threshold = rng.choice([1, 2, 3, 5])
        breaker = CircuitBreaker(
            loop,
            failure_threshold=threshold,
            recovery_timeout=rng.choice([50e-6, 100e-6, 250e-6]),
            half_open_max_probes=rng.choice([1, 2]),
        )
        consecutive = 0
        for _ in range(400):
            # Advance virtual time in random hops so the lazy half-open
            # transition fires at arbitrary points of the trace.
            loop.run(until=loop.now + rng.uniform(0, 120e-6))
            if breaker.allow():
                if rng.random() < 0.5:
                    breaker.record_success()
                    consecutive = 0
                else:
                    breaker.record_failure()
                    consecutive += 1
            if breaker.state == BreakerState.CLOSED and consecutive >= threshold:
                raise AssertionError(
                    f"seed {seed}: closed after {consecutive} consecutive failures"
                )
        for at, src, dst in breaker.transitions:
            assert (src, dst) in self.LEGAL, (
                f"seed {seed}: illegal transition {src} -> {dst} at {at}"
            )

    def test_trips_after_exactly_threshold_failures(self):
        loop = EventLoop()
        breaker = CircuitBreaker(loop, failure_threshold=3, recovery_timeout=1e-3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_half_open_admits_bounded_probes_then_closes(self):
        loop = EventLoop()
        breaker = CircuitBreaker(
            loop, failure_threshold=1, recovery_timeout=100e-6,
            half_open_max_probes=2,
        )
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        loop.run(until=loop.now + 150e-6)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow() and breaker.allow()
        assert not breaker.allow()  # third concurrent probe refused
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens_with_fresh_timeout(self):
        loop = EventLoop()
        breaker = CircuitBreaker(
            loop, failure_threshold=1, recovery_timeout=100e-6,
        )
        breaker.record_failure()
        loop.run(until=loop.now + 150e-6)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.remaining_open_time() == pytest.approx(100e-6)


class TestHeartbeatDetectionBound:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_detection_within_bound_for_random_death_times(self, seed):
        rng = random.Random(seed * 977 + 5)
        loop = EventLoop()
        interval = rng.choice([10e-6, 25e-6, 40e-6])
        misses = rng.choice([1, 2, 3, 5])
        alive = [True]
        monitor = HeartbeatMonitor(
            loop, lambda: alive[0], interval=interval, miss_threshold=misses,
        ).start()
        death = rng.uniform(0, 20 * interval)

        def kill(_=None):
            alive[0] = False

        loop.call_later(death, kill)
        loop.run(until=death + monitor.detection_bound + interval)
        downs = [t for t, verdict in monitor.declarations if verdict == "down"]
        assert downs, f"seed {seed}: death at {death} never detected"
        latency = downs[0] - death
        assert latency <= monitor.detection_bound + 1e-12, (
            f"seed {seed}: detection took {latency}, bound "
            f"{monitor.detection_bound} (interval={interval}, misses={misses})"
        )

    def test_revival_declared_up_within_one_interval(self):
        loop = EventLoop()
        alive = [True]
        monitor = HeartbeatMonitor(
            loop, lambda: alive[0], interval=20e-6, miss_threshold=2,
        ).start()
        loop.call_later(50e-6, lambda _=None: alive.__setitem__(0, False))
        loop.call_later(200e-6, lambda _=None: alive.__setitem__(0, True))
        loop.run(until=300e-6)
        verdicts = [v for _, v in monitor.declarations]
        assert verdicts == ["down", "up"]
        up_at = [t for t, v in monitor.declarations if v == "up"][0]
        assert up_at - 200e-6 <= 20e-6 + 1e-12

    def test_down_since_classifies_attempt_windows(self):
        loop = EventLoop()
        alive = [True]
        monitor = HeartbeatMonitor(
            loop, lambda: alive[0], interval=10e-6, miss_threshold=1,
        ).start()
        loop.call_later(25e-6, lambda _=None: alive.__setitem__(0, False))
        loop.run(until=50e-6)
        assert not monitor.up
        assert monitor.down_since(0.0)  # currently down: any window overlaps
        alive[0] = True
        loop.run(until=70e-6)
        assert monitor.up
        # An attempt started before the up-declaration overlapped the
        # outage; one started after did not.
        assert monitor.down_since(20e-6)
        assert not monitor.down_since(loop.now)
