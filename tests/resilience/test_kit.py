"""The composed kit's call wrapper: retries, fail-fast, outage awareness.

Drives :meth:`ResilienceKit.call` with scripted attempt generators on a
bare event loop -- no fabric -- so each behaviour is pinned in isolation:
bounded retries with growing per-attempt deadlines, breaker fail-fast
with fallback diversion, caller-scoped breakers, and the outage-aware
accounting that keeps a *detected* outage from tripping breakers or
stampeding the revived target.
"""

from __future__ import annotations

import pytest

from repro.errors import CircuitOpenError, TransportError
from repro.resilience import BreakerState, KitConfig, ResilienceKit
from repro.sim.event_loop import EventLoop


def drive(loop, gen, dt=2e-3):
    """Run ``gen`` to completion, advancing at most ``dt`` of virtual time.

    ``run(until=...)`` moves the clock exactly to the bound, and the
    breaker's open->half-open transition is lazy on the clock -- so the
    window is kept small enough that driving a call does not silently
    age breakers past their recovery timeout.
    """
    done = loop.process(gen)
    loop.run(until=loop.now + dt)
    assert done.triggered, "kit call never finished"
    if not done.ok:
        raise done.value
    return done.value


def scripted_attempt(loop, outcomes, log=None, latency=5e-6):
    """Attempt factory failing/succeeding per the ``outcomes`` script."""

    def attempt(deadline):
        if log is not None:
            log.append((loop.now, deadline))
        outcome = outcomes.pop(0) if outcomes else "ok"
        yield loop.timeout(latency)
        if outcome == "fail":
            raise TransportError("scripted failure")
        return b"response"

    return attempt


class TestRetryPath:
    def test_retries_until_success_and_spends_budget(self):
        loop = EventLoop()
        kit = ResilienceKit(loop, KitConfig(max_attempts=5))
        log = []
        value = drive(
            loop,
            kit.call(scripted_attempt(loop, ["fail", "fail"], log), dst=1),
        )
        assert value == b"response"
        assert kit.retries == 2 and kit.successes == 1
        assert kit.budget.spent == 2
        # Success after retries refunds the budget once.
        assert kit.budget.refunded == pytest.approx(kit.config.budget_refund)

    def test_per_attempt_deadline_grows(self):
        loop = EventLoop()
        cfg = KitConfig(attempt_timeout=100e-6, timeout_growth=2.0, max_attempts=6)
        kit = ResilienceKit(loop, cfg)
        log = []
        drive(loop, kit.call(scripted_attempt(loop, ["fail"] * 4, log), dst=9))
        deadlines = [d for _, d in log]
        assert deadlines == pytest.approx(
            [100e-6, 200e-6, 400e-6, 800e-6, 800e-6]
        )  # growth capped at 2**3

    def test_exhausted_attempts_raise_the_last_error(self):
        loop = EventLoop()
        kit = ResilienceKit(loop, KitConfig(max_attempts=3))
        with pytest.raises(TransportError):
            drive(loop, kit.call(scripted_attempt(loop, ["fail"] * 10), dst=1))
        assert kit.exhausted == 1

    def test_budget_exhaustion_stops_retrying(self):
        loop = EventLoop()
        cfg = KitConfig(max_attempts=50, budget_capacity=2.0, budget_refund=0.0)
        kit = ResilienceKit(loop, cfg)
        with pytest.raises(TransportError, match="retry budget exhausted"):
            drive(loop, kit.call(scripted_attempt(loop, ["fail"] * 50), dst=1))
        assert kit.budget.denied >= 1

    def test_non_retryable_errors_propagate_untouched(self):
        loop = EventLoop()
        kit = ResilienceKit(loop, KitConfig())

        def attempt(deadline):
            yield loop.timeout(1e-6)
            raise ValueError("not transport trouble")

        with pytest.raises(ValueError):
            drive(loop, kit.call(attempt, dst=1))
        assert kit.retries == 0


class TestFailFastAndFallback:
    def _tripped_kit(self, loop):
        cfg = KitConfig(breaker_failure_threshold=1, max_attempts=2,
                        breaker_recovery_timeout=10.0)
        kit = ResilienceKit(loop, cfg)
        # The first failure trips the breaker; the retry loop's gate then
        # fail-fasts instead of burning the second attempt.
        with pytest.raises(CircuitOpenError):
            drive(loop, kit.call(scripted_attempt(loop, ["fail"] * 5), dst=7))
        assert kit.breaker_for(7).state is BreakerState.OPEN
        return kit

    def test_open_breaker_raises_circuit_open(self):
        loop = EventLoop()
        kit = self._tripped_kit(loop)
        with pytest.raises(CircuitOpenError):
            drive(loop, kit.call(scripted_attempt(loop, []), dst=7))
        assert kit.fail_fast == 2  # the tripping call's gate + this one

    def test_open_breaker_diverts_to_fallback(self):
        loop = EventLoop()
        kit = self._tripped_kit(loop)
        value = drive(
            loop,
            kit.call(
                scripted_attempt(loop, []), dst=7,
                fallback=lambda exc: b"stale-cache",
            ),
        )
        assert value == b"stale-cache"
        assert kit.fallbacks == 1

    def test_wait_mode_parks_until_breaker_recovers(self):
        loop = EventLoop()
        cfg = KitConfig(breaker_failure_threshold=1, max_attempts=3,
                        breaker_recovery_timeout=100e-6, recovery_splay=0.0)
        kit = ResilienceKit(loop, cfg)
        # Tight window: the trip (at the 5 us attempt failure) must still
        # be inside its 100 us open period when the second call starts.
        with pytest.raises(CircuitOpenError):
            drive(loop, kit.call(scripted_attempt(loop, ["fail"] * 5), dst=7),
                  dt=20e-6)
        log = []
        value = drive(
            loop, kit.call(scripted_attempt(loop, [], log), dst=7, on_open="wait")
        )
        assert value == b"response"
        assert kit.parked >= 1
        # The attempt only ran once the open window (trip at 5 us +
        # 100 us recovery) had fully elapsed.
        assert log[0][0] >= 105e-6 - 1e-12

    def test_down_destination_fails_fast(self):
        loop = EventLoop()
        kit = ResilienceKit(loop, KitConfig(heartbeat_interval=10e-6,
                                            heartbeat_miss_threshold=1))
        kit.watch(3, lambda: False)
        loop.run(until=50e-6)
        assert not kit.destination_up(3)
        with pytest.raises(CircuitOpenError):
            drive(loop, kit.call(scripted_attempt(loop, []), dst=3))


class TestCallerScoping:
    def test_caller_failures_do_not_trip_other_callers(self):
        loop = EventLoop()
        cfg = KitConfig(breaker_failure_threshold=1, max_attempts=2)
        kit = ResilienceKit(loop, cfg)
        with pytest.raises(CircuitOpenError):
            drive(
                loop,
                kit.call(scripted_attempt(loop, ["fail"] * 3), dst=5, caller=0),
                dt=20e-6,
            )
        assert kit.breaker_for((0, 5)).state is BreakerState.OPEN
        # A different caller to the same destination is unaffected.
        value = drive(
            loop, kit.call(scripted_attempt(loop, []), dst=5, caller=1)
        )
        assert value == b"response"

    def test_down_caller_parks_instead_of_attempting(self):
        loop = EventLoop()
        cfg = KitConfig(heartbeat_interval=10e-6, heartbeat_miss_threshold=1,
                        recovery_splay=0.0)
        kit = ResilienceKit(loop, cfg)
        caller_alive = [True]
        kit.watch(0, lambda: caller_alive[0])
        kit.watch(5, lambda: True)
        caller_alive[0] = False
        loop.run(until=30e-6)
        assert not kit.destination_up(0)
        log = []
        loop.call_later(200e-6, lambda _=None: caller_alive.__setitem__(0, True))
        value = drive(
            loop,
            kit.call(
                scripted_attempt(loop, [], log), dst=5, caller=0, on_open="wait"
            ),
        )
        assert value == b"response"
        # No attempt ran while the caller's own host was declared down.
        assert log[0][0] >= 200e-6
        assert kit.parked >= 1


class TestOutageAwareAccounting:
    def test_outage_straddling_failures_do_not_trip_breaker(self):
        loop = EventLoop()
        # Threshold 1: any failure the kit blames on the destination
        # trips instantly -- so surviving proves the straddler was
        # classified as outage-explained.
        cfg = KitConfig(
            breaker_failure_threshold=1, max_attempts=6,
            heartbeat_interval=10e-6, heartbeat_miss_threshold=1,
            recovery_splay=0.0,
        )
        kit = ResilienceKit(loop, cfg)
        alive = [True]
        kit.watch(4, lambda: alive[0])
        # The attempt starts while dst is healthy, dst dies under it, and
        # its deadline expires *after* the heartbeat declared the outage:
        # the classic straddling failure.  It must not feed the breaker.
        loop.call_later(5e-6, lambda _=None: alive.__setitem__(0, False))
        loop.call_later(150e-6, lambda _=None: alive.__setitem__(0, True))
        value = drive(
            loop,
            kit.call(
                scripted_attempt(loop, ["fail"], latency=100e-6),
                dst=4, on_open="wait",
            ),
        )
        assert value == b"response"
        assert kit.breaker_for(4).trips == 0
        assert kit.retries == 1

    def test_recovery_splay_is_bounded_and_counted(self):
        loop = EventLoop()
        cfg = KitConfig(
            heartbeat_interval=10e-6, heartbeat_miss_threshold=1,
            recovery_splay=80e-6,
        )
        kit = ResilienceKit(loop, cfg)
        alive = [False]
        kit.watch(2, lambda: alive[0])
        loop.run(until=30e-6)
        loop.call_later(50e-6, lambda _=None: alive.__setitem__(0, True))
        log = []
        drive(
            loop,
            kit.call(scripted_attempt(loop, [], log), dst=2, on_open="wait"),
        )
        assert kit.splayed == 1
        # The attempt ran after the up-verdict plus at most one park
        # cycle plus the splay window.
        up_by = 30e-6 + 50e-6 + cfg.heartbeat_interval
        assert log[0][0] <= up_by + 1.1 * cfg.heartbeat_interval + 80e-6

    def test_silent_failures_still_trip_the_breaker(self):
        # No monitors at all: every failure is "unexplained" and the
        # breaker semantics are the classic consecutive-failure ones.
        loop = EventLoop()
        cfg = KitConfig(breaker_failure_threshold=3, max_attempts=4)
        kit = ResilienceKit(loop, cfg)
        # The third unexplained failure trips the breaker; the gate then
        # refuses the fourth attempt.
        with pytest.raises(CircuitOpenError):
            drive(loop, kit.call(scripted_attempt(loop, ["fail"] * 5), dst=1))
        assert kit.breaker_for(1).trips == 1
