"""TenantFabric: per-tenant keys, sessions, shaping, serving."""

import pytest

from repro.bench.loaded import LOAD_HOMA_CONFIG
from repro.errors import ProtocolError
from repro.load.cluster import build_request, verify_response
from repro.tenancy import IsolationConfig, Tenant, TenantFabric
from repro.tenancy.harness import TENANT_PORT_BASE, tenant_pair_keys
from repro.testbed import ClosTestbed

RESPONSE = 64
TENANTS = [
    Tenant("victim", 0),
    Tenant("aggr", 1, rate_fraction=0.5),
]


def make_fabric(enabled=False, **kw):
    bed = ClosTestbed.leaf_spine(
        num_racks=2, hosts_per_rack=2, num_spines=2, num_app_cores=4, seed=1
    )
    fabric = TenantFabric(
        bed,
        [Tenant(t.name, t.tid, t.weight, t.rate_fraction) for t in TENANTS],
        isolation=IsolationConfig(enabled=enabled, **kw),
        config=LOAD_HOMA_CONFIG,
        seed=3,
    )
    return bed, fabric


def run_calls(bed, fabric, calls, shaped=True):
    """calls: list of (tenant_name, src, dst, serial); returns rtts."""
    rtts = {}

    def one(name, src, dst, serial):
        thread = fabric.thread_for(fabric.registry.by_name(name), src, serial)
        request = build_request(serial, 256, RESPONSE)
        t0 = bed.loop.now
        response = yield from fabric.call(
            name, src, dst, thread, request, shaped=shaped
        )
        assert verify_response(response, serial, RESPONSE)
        rtts[serial] = bed.loop.now - t0

    done = [bed.loop.process(one(*call)) for call in calls]
    bed.run(until=bed.loop.now + 1.0)
    assert all(ev.triggered and ev.ok for ev in done)
    return rtts


class TestKeys:
    def test_tenants_get_disjoint_aead_contexts(self):
        shares = (b"s" * 32, b"r" * 32)
        a = tenant_pair_keys(0, 10, 20, *shares)
        b = tenant_pair_keys(1, 10, 20, *shares)
        assert a.key != b.key and a.iv != b.iv

    def test_direction_and_share_sensitivity(self):
        fwd = tenant_pair_keys(0, 10, 20, b"s" * 32, b"r" * 32)
        rev = tenant_pair_keys(0, 20, 10, b"r" * 32, b"s" * 32)
        other = tenant_pair_keys(0, 10, 20, b"x" * 32, b"r" * 32)
        assert fwd.key != rev.key
        assert fwd.key != other.key

    def test_shares_drawn_from_tenant_keypool(self):
        _bed, fabric = make_fabric()
        for pool in fabric.keypools:
            for tenant in fabric.registry:
                stats = pool.stats()[tenant.name]
                assert stats["taken"] + stats["misses"] >= 1


class TestRpc:
    def test_both_tenants_serve_with_integrity(self):
        bed, fabric = make_fabric()
        run_calls(bed, fabric, [
            ("victim", 0, 1, 1), ("victim", 0, 3, 2),
            ("aggr", 1, 2, 3), ("aggr", 3, 0, 4),
        ])
        assert fabric.requests_served["victim"] == 2
        assert fabric.requests_served["aggr"] == 2
        assert fabric.server_integrity_errors == {"victim": 0, "aggr": 0}

    def test_tenant_ports_are_disjoint(self):
        _bed, fabric = make_fabric()
        for tenant in fabric.registry:
            mesh = fabric._meshes[tenant.name]
            assert mesh.port == TENANT_PORT_BASE + tenant.tid
            assert all(s.port == mesh.port for s in mesh.socks)

    def test_sessions_land_in_own_partition(self):
        bed, fabric = make_fabric()
        run_calls(bed, fabric, [("victim", 0, 1, 1), ("aggr", 0, 1, 2)])
        # Client side (host 0) and server side (host 1) both registered a
        # session per tenant, each inside that tenant's compartment.
        for h in (0, 1):
            stats = fabric.session_tables[h].stats()
            assert stats["victim"]["inserted"] >= 1
            assert stats["aggr"]["inserted"] >= 1

    def test_session_eviction_redrives_codec(self):
        # A 2-tenant fabric with the minimum compartment size: each new
        # peer talked to *in turn* evicts the previous session, and
        # traffic still verifies because tenant keys re-derive
        # deterministically when the evicted peer comes back.
        bed, fabric = make_fabric(session_capacity=2)
        for serial, dst in enumerate((1, 2, 3, 1), start=1):
            run_calls(bed, fabric, [("victim", 0, dst, serial)])
        stats = fabric.session_tables[0].stats()["victim"]
        assert stats["evicted_lru"] >= 2
        assert fabric.server_integrity_errors["victim"] == 0

    def test_concurrent_overflow_refused_not_hung(self):
        # One session slot per tenant and three concurrent peers: the
        # overflow calls fail fast with admission backpressure, charged
        # to the calling tenant, instead of deadlocking the socket.
        bed, fabric = make_fabric(session_capacity=2)
        outcomes = {}

        def one(serial, dst):
            thread = fabric.thread_for(
                fabric.registry.by_name("victim"), 0, serial
            )
            request = build_request(serial, 256, RESPONSE)
            try:
                response = yield from fabric.call(
                    "victim", 0, dst, thread, request
                )
                outcomes[serial] = verify_response(response, serial, RESPONSE)
            except ProtocolError:
                outcomes[serial] = "refused"

        done = [
            bed.loop.process(one(serial, dst))
            for serial, dst in enumerate((1, 2, 3), start=1)
        ]
        bed.run(until=bed.loop.now + 1.0)
        assert all(ev.triggered and ev.ok for ev in done)
        assert outcomes[1] is True
        assert outcomes[2] == outcomes[3] == "refused"


class TestShaping:
    def test_unshaped_without_isolation(self):
        _bed, fabric = make_fabric(enabled=False)
        assert fabric.limiters == {}

    def test_only_entitled_tenants_shaped(self):
        _bed, fabric = make_fabric(enabled=True)
        names = {name for (_h, name) in fabric.limiters}
        assert names == {"aggr"}  # the victim has rate_fraction None

    def test_burst_excess_pays_shaping_delay(self):
        bed, fabric = make_fabric(enabled=True, burst_bytes=1024)
        serials = list(range(1, 9))
        rtts = run_calls(
            bed, fabric, [("aggr", 0, 1, s) for s in serials]
        )
        stats = fabric.throttle_stats("aggr")
        assert stats["throttled"] > 0
        assert stats["throttle_wait_total"] > 0
        # The shaped tail is strictly slower than the first conforming send.
        assert max(rtts.values()) > min(rtts.values())

    def test_calibration_path_bypasses_shaper(self):
        bed, fabric = make_fabric(enabled=True, burst_bytes=1024)
        run_calls(
            bed, fabric, [("aggr", 0, 1, s) for s in range(1, 9)],
            shaped=False,
        )
        assert fabric.throttle_stats("aggr")["throttled"] == 0


class TestObs:
    def test_tenant_gauges_exported(self):
        bed = ClosTestbed.leaf_spine(
            num_racks=2, hosts_per_rack=2, num_spines=2, num_app_cores=4,
            seed=1,
        )
        obs = bed.enable_obs()
        fabric = TenantFabric(
            bed, [Tenant("victim", 0), Tenant("aggr", 1, rate_fraction=0.5)],
            isolation=IsolationConfig(enabled=True),
            config=LOAD_HOMA_CONFIG, seed=3,
        )
        obs.observe_tenant_fabric(fabric)
        run_calls(bed, fabric, [("victim", 0, 1, 1)])
        metrics = obs.snapshot()["metrics"]
        assert metrics["tenant.victim.served"] == 1
        assert metrics["tenant.victim.integrity_errors"] == 0
        assert "tenant.aggr.keypool.taken" in metrics
