"""TokenBucket: shaping delays, policing rejections, refill bounds."""

import pytest

from repro.errors import ProtocolError
from repro.sim.event_loop import EventLoop
from repro.tenancy import TokenBucket


def make_bucket(rate_bps=8_000.0, burst_bytes=100.0):
    loop = EventLoop()
    # rate 8000 bps == 1000 bytes/s: delays read directly in milliseconds.
    return loop, TokenBucket(loop, rate_bps, burst_bytes)


class TestShaping:
    def test_conforming_burst_is_free(self):
        _loop, bucket = make_bucket()
        assert bucket.reserve(60) == 0.0
        assert bucket.reserve(40) == 0.0
        assert bucket.conforming == 2
        assert bucket.throttled == 0

    def test_excess_is_serialised_at_the_rate(self):
        _loop, bucket = make_bucket()
        bucket.reserve(100)  # drains the burst
        delay = bucket.reserve(50)
        assert delay == pytest.approx(50 / 1000.0)
        # A further reservation queues behind the previous debt.
        assert bucket.reserve(50) == pytest.approx(100 / 1000.0)
        assert bucket.throttled == 2
        assert bucket.throttle_wait_total == pytest.approx(0.15)

    def test_refill_caps_at_burst(self):
        loop, bucket = make_bucket()
        bucket.reserve(100)
        loop.run(until=10.0)  # 10 s of refill at 1000 B/s >> 100 B burst
        assert bucket.tokens == pytest.approx(100.0)

    def test_delay_is_exactly_refill_horizon(self):
        loop, bucket = make_bucket()
        bucket.reserve(100)
        delay = bucket.reserve(30)
        loop.run(until=delay)
        # After sleeping the returned delay the balance is whole again.
        assert bucket.tokens == pytest.approx(0.0, abs=1e-9)

    def test_zero_bytes_free(self):
        _loop, bucket = make_bucket()
        assert bucket.reserve(0) == 0.0
        assert bucket.conforming == 0


class TestPolicing:
    def test_rejects_when_short(self):
        _loop, bucket = make_bucket()
        assert bucket.try_take(80)
        assert not bucket.try_take(40)
        assert bucket.rejected == 1
        # Policing never dips negative: the 20 remaining still spendable.
        assert bucket.try_take(20)

    def test_recovers_after_refill(self):
        loop, bucket = make_bucket()
        bucket.try_take(100)
        assert not bucket.try_take(10)
        loop.run(until=0.05)  # 50 ms -> 50 bytes back
        assert bucket.try_take(10)


class TestValidation:
    def test_bad_rate_rejected(self):
        loop = EventLoop()
        with pytest.raises(ProtocolError):
            TokenBucket(loop, 0.0, 100.0)

    def test_bad_burst_rejected(self):
        loop = EventLoop()
        with pytest.raises(ProtocolError):
            TokenBucket(loop, 100.0, 0.0)
