"""WeightedBulkhead: compartment isolation vs shared head-of-line blocking."""

import pytest

from repro.errors import ProtocolError
from repro.sim.event_loop import EventLoop
from repro.tenancy import BulkheadFull, WeightedBulkhead

WEIGHTS = {"victim": 1.0, "aggr": 1.0}


def occupy(loop, bulkhead, tenant, hold):
    """A process that holds one slot for ``hold`` virtual seconds."""

    def body():
        yield from bulkhead.acquire(tenant)
        try:
            yield loop.timeout(hold)
        finally:
            bulkhead.release(tenant)

    return loop.process(body())


def timed_acquire(loop, bulkhead, tenant, out):
    def body():
        t0 = loop.now
        yield from bulkhead.acquire(tenant)
        out.append(loop.now - t0)
        bulkhead.release(tenant)

    return loop.process(body())


class TestPartitionedIsolation:
    def test_aggressor_backlog_never_delays_victim(self):
        loop = EventLoop()
        bulkhead = WeightedBulkhead(loop, 4, WEIGHTS, partitioned=True)
        # The aggressor saturates its 2 slots and queues 10 deep.
        for _ in range(12):
            occupy(loop, bulkhead, "aggr", hold=1.0)
        waits: list = []
        timed_acquire(loop, bulkhead, "victim", waits)
        loop.run(until=0.5)
        assert waits == [0.0]
        assert bulkhead.waited["victim"] == 0
        assert bulkhead.waited["aggr"] == 10

    def test_tenant_waits_only_behind_itself(self):
        loop = EventLoop()
        bulkhead = WeightedBulkhead(loop, 4, WEIGHTS, partitioned=True)
        occupy(loop, bulkhead, "victim", hold=1.0)
        occupy(loop, bulkhead, "victim", hold=1.0)
        waits: list = []
        timed_acquire(loop, bulkhead, "victim", waits)
        loop.run(until=5.0)
        assert waits == [pytest.approx(1.0)]

    def test_capacity_follows_weights(self):
        loop = EventLoop()
        bulkhead = WeightedBulkhead(loop, 8, {"big": 3.0, "small": 1.0})
        assert bulkhead.capacity("big") == 6
        assert bulkhead.capacity("small") == 2


class TestSharedHeadOfLine:
    def test_aggressor_backlog_blocks_victim(self):
        loop = EventLoop()
        bulkhead = WeightedBulkhead(loop, 4, WEIGHTS, partitioned=False)
        for _ in range(8):
            occupy(loop, bulkhead, "aggr", hold=1.0)
        waits: list = []
        timed_acquire(loop, bulkhead, "victim", waits)
        loop.run(until=10.0)
        # 4 slots, 4 queued aggressors ahead of the victim: two full
        # service turns pass before the victim's request is admitted.
        assert waits == [pytest.approx(2.0)]
        assert bulkhead.waited["victim"] == 1

    def test_same_total_concurrency_either_mode(self):
        loop = EventLoop()
        shared = WeightedBulkhead(loop, 4, WEIGHTS, partitioned=False)
        parts = WeightedBulkhead(loop, 4, WEIGHTS, partitioned=True)
        assert shared.capacity("victim") == 4  # one pool, all of it
        assert parts.capacity("victim") + parts.capacity("aggr") == 4


class TestSlotAccounting:
    def test_fifo_handoff_within_compartment(self):
        loop = EventLoop()
        bulkhead = WeightedBulkhead(loop, 2, {"t": 1.0})
        order: list = []

        def body(tag, hold):
            yield from bulkhead.acquire("t")
            order.append(tag)
            yield loop.timeout(hold)
            bulkhead.release("t")

        for tag in ("a", "b", "c", "d", "e"):
            loop.process(body(tag, 0.1))
        loop.run(until=2.0)
        assert order == ["a", "b", "c", "d", "e"]
        assert bulkhead.active("t") == 0

    def test_acquire_nowait_polices(self):
        loop = EventLoop()
        bulkhead = WeightedBulkhead(loop, 2, {"t": 1.0})
        bulkhead.acquire_nowait("t")
        bulkhead.acquire_nowait("t")
        with pytest.raises(BulkheadFull):
            bulkhead.acquire_nowait("t")
        bulkhead.release("t")
        bulkhead.acquire_nowait("t")  # slot freed, admissible again

    def test_release_without_acquire_rejected(self):
        loop = EventLoop()
        bulkhead = WeightedBulkhead(loop, 2, {"t": 1.0})
        with pytest.raises(ProtocolError):
            bulkhead.release("t")

    def test_unknown_tenant_rejected(self):
        loop = EventLoop()
        bulkhead = WeightedBulkhead(loop, 2, {"t": 1.0})
        with pytest.raises(ProtocolError):
            bulkhead.acquire_nowait("stranger")

    def test_stats_shape(self):
        loop = EventLoop()
        bulkhead = WeightedBulkhead(loop, 4, WEIGHTS)
        occupy(loop, bulkhead, "aggr", hold=0.1)
        loop.run(until=1.0)
        stats = bulkhead.stats()
        assert stats["aggr"]["admitted"] == 1
        assert stats["aggr"]["peak_active"] == 1
        assert stats["victim"]["admitted"] == 0
