"""Homa engine integration tests: RPCs, grants, loss recovery."""

from repro.homa import HomaConfig, HomaSocket, HomaTransport
from repro.net.headers import PacketType
from repro.testbed import Testbed
from repro.units import KB


def make_bed(**config_kwargs):
    bed = Testbed.back_to_back()
    config = HomaConfig(**config_kwargs) if config_kwargs else None
    ct = HomaTransport(bed.client, config)
    st = HomaTransport(bed.server, HomaConfig(**config_kwargs) if config_kwargs else None)
    csock = HomaSocket(ct, bed.client.alloc_port())
    ssock = HomaSocket(st, 6000)
    return bed, ct, st, csock, ssock


def echo_server(bed, ssock, thread_idx=0):
    def server():
        t = bed.server.app_thread(thread_idx)
        while True:
            rpc = yield from ssock.recv_request(t)
            yield from ssock.reply(t, rpc, rpc.payload)

    return bed.loop.process(server())


def run_client(bed, csock, payloads):
    results = []

    def client():
        t = bed.client.app_thread(0)
        for payload in payloads:
            t0 = bed.loop.now
            response = yield from csock.call(t, bed.server.addr, 6000, payload)
            results.append((response, bed.loop.now - t0))

    done = bed.loop.process(client())
    bed.loop.run(until=10.0)
    assert done.triggered, "client deadlocked"
    if not done.ok:
        raise done.value
    return results


class TestBasicRpc:
    def test_small_echo(self):
        bed, ct, st, csock, ssock = make_bed()
        echo_server(bed, ssock)
        [(response, rtt)] = run_client(bed, csock, [b"q" * 64])
        assert response == b"q" * 64
        assert 3e-6 < rtt < 50e-6

    def test_multi_packet_message(self):
        bed, ct, st, csock, ssock = make_bed()
        echo_server(bed, ssock)
        payload = bytes(i & 0xFF for i in range(8192))
        [(response, _)] = run_client(bed, csock, [payload])
        assert response == payload

    def test_message_larger_than_unscheduled_uses_grants(self):
        bed, ct, st, csock, ssock = make_bed()
        echo_server(bed, ssock)
        payload = bytes(300 * KB)
        [(response, _)] = run_client(bed, csock, [payload])
        assert response == payload
        # Grant packets actually flowed (receiver-driven transfer).
        assert bed.link.stats("b")["tx_packets"] > 0

    def test_many_sequential_rpcs(self):
        bed, ct, st, csock, ssock = make_bed()
        echo_server(bed, ssock)
        results = run_client(bed, csock, [bytes([i]) * 100 for i in range(20)])
        assert [r[0][0] for r in results] == list(range(20))

    def test_concurrent_rpcs_single_socket(self):
        bed, ct, st, csock, ssock = make_bed()
        echo_server(bed, ssock)
        done_flags = []

        def one_caller(i):
            t = bed.client.app_thread(i % 12)
            response = yield from csock.call(
                t, bed.server.addr, 6000, bytes([i]) * 256
            )
            assert response == bytes([i]) * 256
            done_flags.append(i)

        for i in range(30):
            bed.loop.process(one_caller(i))
        bed.loop.run(until=10.0)
        assert sorted(done_flags) == list(range(30))

    def test_sender_state_freed_after_ack(self):
        bed, ct, st, csock, ssock = make_bed()
        echo_server(bed, ssock)
        run_client(bed, csock, [b"x" * 100])
        bed.loop.run()
        assert not ct._outbound, "client kept outbound state after ACK"
        assert not st._outbound, "server kept outbound state after ACK"

    def test_empty_message_rejected(self):
        from repro.errors import ProtocolError

        bed, ct, st, csock, ssock = make_bed()

        def client():
            t = bed.client.app_thread(0)
            yield from csock.call(t, bed.server.addr, 6000, b"")

        proc = bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert not proc.ok and isinstance(proc.value, ProtocolError)


class TestLossRecovery:
    def _run_with_loss(self, drop, payload_size, resend_interval=50e-6):
        bed, ct, st, csock, ssock = make_bed(resend_interval=resend_interval)
        state = {"n": 0}

        def loss_fn(packet):
            if packet.transport.pkt_type == PacketType.DATA:
                state["n"] += 1
                return drop(state["n"])
            return False

        bed.link.set_loss_fn("a", loss_fn)
        echo_server(bed, ssock)
        payload = bytes(i & 0xFF for i in range(payload_size))
        [(response, rtt)] = run_client(bed, csock, [payload])
        assert response == payload
        return bed, ct, st

    def test_lost_packet_recovered_by_resend(self):
        bed, ct, st, = self._run_with_loss(lambda n: n == 2, 8192)
        assert st.resend_requests >= 1
        assert ct.packets_retransmitted >= 1

    def test_first_packet_loss(self):
        self._run_with_loss(lambda n: n == 1, 8192)

    def test_whole_segment_loss(self):
        # All packets of the first segment of a multi-segment message.
        self._run_with_loss(lambda n: n <= 44, 100_000)

    def test_duplicate_injection_is_ignored(self):
        # Replay a DATA packet at the network level: receiver must not
        # deliver the message twice.
        bed, ct, st, csock, ssock = make_bed()
        replayed = []
        original = bed.link._a_to_b.receiver

        def duplicator(packet):
            original(packet)
            if packet.transport.pkt_type == PacketType.DATA and not replayed:
                replayed.append(True)
                original(packet)  # inject a copy

        bed.link._a_to_b.receiver = duplicator
        echo_server(bed, ssock)
        [(response, _)] = run_client(bed, csock, [b"h" * 64])
        assert response == b"h" * 64
        assert st.spurious_ignored >= 1
        assert st.messages_delivered == 1  # the request, delivered once

    def test_response_loss_recovered(self):
        bed, ct, st, csock, ssock = make_bed(resend_interval=50e-6)
        state = {"n": 0}

        def loss_fn(packet):
            if packet.transport.pkt_type == PacketType.DATA:
                state["n"] += 1
                return state["n"] == 1  # first response data packet
            return False

        bed.link.set_loss_fn("b", loss_fn)
        echo_server(bed, ssock)
        [(response, _)] = run_client(bed, csock, [b"k" * 128])
        assert response == b"k" * 128
        assert ct.resend_requests >= 1


class TestReceiverDriven:
    def test_grants_pace_large_messages(self):
        bed, ct, st, csock, ssock = make_bed(
            unscheduled_bytes=10 * KB, grant_window=10 * KB
        )
        echo_server(bed, ssock)
        payload = bytes(100 * KB)
        [(response, _)] = run_client(bed, csock, [payload])
        assert response == payload

    def test_unscheduled_only_for_small(self):
        bed, ct, st, csock, ssock = make_bed(unscheduled_bytes=60 * KB)
        grants = []
        original = bed.link._b_to_a.receiver

        def watch(packet):
            if packet.transport.pkt_type == PacketType.GRANT:
                grants.append(packet)
            original(packet)

        bed.link._b_to_a.receiver = watch
        echo_server(bed, ssock)
        run_client(bed, csock, [b"s" * 1000])
        assert grants == []  # small message: no grant traffic

    def test_control_packets_high_priority(self):
        bed, ct, st, csock, ssock = make_bed()
        control_prios = []
        original = bed.link._b_to_a.receiver

        def watch(packet):
            if packet.transport.pkt_type in (PacketType.GRANT, PacketType.ACK):
                control_prios.append(packet.transport.priority)
            original(packet)

        bed.link._b_to_a.receiver = watch
        echo_server(bed, ssock)
        run_client(bed, csock, [bytes(200 * KB)])
        assert control_prios and all(p == 7 for p in control_prios)
