"""Differential suite: contiguous reassembly vs the old fragment path.

The receive path now preallocates one buffer per in-flight message and
writes payload slices in place; before this it accumulated per-packet
fragments in dicts and joined them at completion.  These tests keep the
old fragment assembler alive *inside the test* as a reference model and
drive both implementations with identical randomized packet streams --
drops, reordering, duplicates, explicit-offset retransmissions, IPID
wraparound, and malformed sizes -- asserting byte-identical assembly and
identical error behaviour.  A final end-to-end test forces corruption
recovery so the ``forgive_message`` un-deliver path redelivers through a
*fresh* contiguous buffer.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ProtocolError
from repro.homa.message import InboundMessage, SegmentAssembler, sort_circular_ipids
from repro.net.faults import FaultConfig

from tests.fuzz.harness import (
    build_pair,
    random_payloads,
    run_exchange,
    start_echo_server,
)

SEEDS = range(50)


class RefSegmentAssembler:
    """The pre-contiguous fragment assembler, verbatim semantics.

    Packets are buffered in dicts keyed by IPID / explicit offset and the
    segment is joined only at completion.  Kept here as the reference
    model the zero-copy implementation must be indistinguishable from.
    """

    def __init__(self, seg_len: int, mss: int):
        self.seg_len = seg_len
        self.mss = mss
        self.num_packets = max(1, (seg_len + mss - 1) // mss)
        self._by_ipid: dict[int, bytes] = {}
        self._by_offset: dict[int, bytes] = {}
        self.complete_data = None
        self.spurious = 0

    @property
    def complete(self) -> bool:
        return self.complete_data is not None

    def add_tso_packet(self, ipid: int, payload) -> None:
        if self.complete or ipid in self._by_ipid:
            self.spurious += 1
            return
        self._by_ipid[ipid] = bytes(payload)
        self._try_assemble()

    def add_explicit_packet(self, offset: int, payload) -> None:
        if self.complete or offset in self._by_offset:
            self.spurious += 1
            return
        if offset % self.mss != 0 or offset + len(payload) > self.seg_len:
            raise ProtocolError(f"bad explicit packet offset {offset}")
        self._by_offset[offset] = bytes(payload)
        self._try_assemble()

    def _try_assemble(self) -> None:
        npkts = self.num_packets
        if len(self._by_ipid) == npkts:
            chunks = [
                self._by_ipid[ipid]
                for ipid in sort_circular_ipids(list(self._by_ipid))
            ]
            self._finish(b"".join(chunks))
            return
        if set(self._by_offset) == {i * self.mss for i in range(npkts)}:
            self._finish(
                b"".join(self._by_offset[off] for off in sorted(self._by_offset))
            )

    def _finish(self, data: bytes) -> None:
        if len(data) != self.seg_len:
            raise ProtocolError(
                f"segment assembled to {len(data)} bytes, expected {self.seg_len}"
            )
        self.complete_data = data
        self._by_ipid.clear()
        self._by_offset.clear()


def _packet_stream(rng, seg_len, mss):
    """A randomized delivery schedule for one segment's packets.

    Yields ``("tso", ipid, payload)`` / ``("explicit", offset, payload)``
    ops covering TSO delivery with reordering and duplicates, optional
    packet loss repaired by explicit retransmissions, and IPID runs that
    wrap the 16-bit space.
    """
    data = bytes(rng.randrange(256) for _ in range(seg_len))
    npkts = max(1, (seg_len + mss - 1) // mss)
    start_ipid = rng.choice([0, rng.randrange(1 << 16), 65534, 65535])
    packets = [
        ((start_ipid + i) & 0xFFFF, i * mss, data[i * mss : (i + 1) * mss])
        for i in range(npkts)
    ]
    ops = []
    lost = set()
    if npkts > 1 and rng.random() < 0.5:
        lost = set(rng.sample(range(npkts), rng.randrange(1, npkts)))
    for i, (ipid, off, chunk) in enumerate(packets):
        if i not in lost:
            ops.append(("tso", ipid, chunk))
            if rng.random() < 0.2:  # duplicate delivery
                ops.append(("tso", ipid, chunk))
    rng.shuffle(ops)
    if lost:
        # A RESEND re-requests the whole segment: explicit offsets cover
        # every packet, some arriving twice.
        repair = [("explicit", off, chunk) for _, off, chunk in packets]
        rng.shuffle(repair)
        for op in repair:
            ops.append(op)
            if rng.random() < 0.2:
                ops.append(op)
    return data, ops


@pytest.mark.parametrize("seed", SEEDS)
def test_assembler_matches_fragment_reference(seed):
    """Both assemblers see the same stream; every observable must match."""
    rng = random.Random(seed)
    for _ in range(8):
        mss = rng.choice([1, 7, 100, 1460, 8960])
        seg_len = rng.randrange(1, 4 * mss + 2)
        data, ops = _packet_stream(rng, seg_len, mss)
        new = SegmentAssembler(seg_len, mss)
        ref = RefSegmentAssembler(seg_len, mss)
        for kind, key, chunk in ops:
            if kind == "tso":
                new.add_tso_packet(key, chunk)
                ref.add_tso_packet(key, chunk)
            else:
                new.add_explicit_packet(key, chunk)
                ref.add_explicit_packet(key, chunk)
            assert new.complete == ref.complete
            assert new.spurious == ref.spurious
        assert new.complete and ref.complete, f"seed {seed}: stream incomplete"
        assert bytes(new.complete_data) == ref.complete_data == data


@pytest.mark.parametrize("seed", range(20))
def test_assembler_error_parity(seed):
    """Malformed packets raise identical ProtocolErrors in both paths."""
    rng = random.Random(seed)
    mss = rng.choice([64, 100, 1460])
    seg_len = rng.randrange(mss + 1, 3 * mss)
    new = SegmentAssembler(seg_len, mss)
    ref = RefSegmentAssembler(seg_len, mss)
    bad_offset = rng.choice([1, mss - 1, mss + 3])  # not a multiple of mss
    with pytest.raises(ProtocolError) as e_new:
        new.add_explicit_packet(bad_offset, b"x")
    with pytest.raises(ProtocolError) as e_ref:
        ref.add_explicit_packet(bad_offset, b"x")
    assert str(e_new.value) == str(e_ref.value)
    # Wrong-size chunks that still cover every slot: the total-length
    # check must fire identically (and before any buffer write).
    short = mss - rng.randrange(1, mss)
    new2 = SegmentAssembler(seg_len, mss)
    ref2 = RefSegmentAssembler(seg_len, mss)
    errors = []
    for asm in (new2, ref2):
        with pytest.raises(ProtocolError) as err:
            for i in range(asm.num_packets - 1):
                asm.add_explicit_packet(i * mss, bytes(short))
            last = (asm.num_packets - 1) * mss
            asm.add_explicit_packet(last, bytes(seg_len - last))
        errors.append(str(err.value))
    assert errors[0] == errors[1]


@pytest.mark.parametrize("seed", range(25))
def test_inbound_message_assembles_contiguously(seed):
    """Multi-segment messages land byte-identical in the single buffer."""
    rng = random.Random(seed)
    mss = rng.choice([100, 1460])
    segment_capacity = mss * rng.choice([2, 4])
    wire_len = rng.randrange(1, 3 * segment_capacity + 2)
    inbound = InboundMessage(
        msg_id=2,
        peer_addr=1,
        peer_port=1,
        local_port=2,
        wire_len=wire_len,
        segment_capacity=segment_capacity,
        mss=mss,
    )
    wire = bytearray()
    offsets = list(range(0, wire_len, segment_capacity))
    rng.shuffle(offsets)
    for off in sorted(offsets):
        seg_len = inbound.segment_length(off)
        wire += bytes(rng.randrange(256) for _ in range(seg_len))
    for off in offsets:
        seg_len = inbound.segment_length(off)
        data = bytes(wire[off : off + seg_len])
        _, ops = _packet_stream(rng, seg_len, mss)
        asm = inbound.assembler(off)
        npkts = asm.num_packets
        start_ipid = rng.randrange(1 << 16)
        order = list(range(npkts))
        rng.shuffle(order)
        for i in order:
            asm.add_tso_packet(
                (start_ipid + i) & 0xFFFF, data[i * mss : (i + 1) * mss]
            )
        inbound.received_bytes += seg_len
    assert inbound.complete
    assert bytes(inbound.assemble()) == bytes(wire)


def test_forgive_message_redelivers_through_fresh_buffer():
    """Corruption recovery: the un-delivered message must reassemble from
    retransmitted packets into a fresh contiguous buffer, byte-identical."""
    faults = FaultConfig(corrupt_rate=0.05, drop_rate=0.01, reorder_rate=0.05)
    recoveries = 0
    for seed in range(12):
        pair = build_pair(faults, fault_seed=seed)
        start_echo_server(pair)
        payloads = random_payloads(seed, 5)
        results = run_exchange(pair, payloads, seed=seed)
        assert results == payloads, f"seed {seed}: delivery not byte-identical"
        counters = pair.engine_counters()
        recoveries += (
            counters["client"]["corrupt_recoveries"]
            + counters["server"]["corrupt_recoveries"]
        )
    # With a 5% corrupt rate across 12 seeds the forgive/redeliver path
    # must have run; if this ever reads 0 the fault schedule went dark.
    assert recoveries > 0, "no corruption recovery exercised"
