"""Lazy batched ACK tests: implicit acks, batch flush, timer fallback."""

from repro.homa import HomaSocket, HomaTransport
from repro.net.headers import PacketType
from repro.testbed import Testbed


def build():
    bed = Testbed.back_to_back()
    ct = HomaTransport(bed.client)
    st = HomaTransport(bed.server)
    csock = HomaSocket(ct, bed.client.alloc_port())
    ssock = HomaSocket(st, 6000)

    def echo():
        thread = bed.server.app_thread(0)
        while True:
            rpc = yield from ssock.recv_request(thread)
            yield from ssock.reply(thread, rpc, rpc.payload)

    bed.loop.process(echo())
    return bed, ct, st, csock, ssock


def run_calls(bed, csock, n):
    def client():
        thread = bed.client.app_thread(0)
        for i in range(n):
            response = yield from csock.call(
                thread, bed.server.addr, 6000, bytes([i & 0xFF]) * 32
            )
            assert response == bytes([i & 0xFF]) * 32

    done = bed.loop.process(client())
    bed.loop.run(until=5.0)
    assert done.triggered and done.ok


class TestImplicitAcks:
    def test_response_frees_request_state(self):
        bed, ct, st, csock, ssock = build()
        run_calls(bed, csock, 1)
        # Client's outbound request was freed by the response itself,
        # without waiting for any ACK packet.
        assert not any(
            msg_id % 2 == 0 for _addr, msg_id in ct._outbound
        ), "request state survived its response"

    def test_requests_generate_no_ack_packets(self):
        bed, ct, st, csock, ssock = build()
        acks = []
        original = bed.link._b_to_a.receiver

        def watch(packet):
            if packet.transport.pkt_type == PacketType.ACK:
                acks.append(packet)
            original(packet)

        bed.link._b_to_a.receiver = watch
        run_calls(bed, csock, 3)
        # Server sends no per-request ACKs (responses imply them).
        assert acks == []


class TestBatchedAcks:
    def test_response_acks_batch(self):
        bed, ct, st, csock, ssock = build()
        acks = []
        original = bed.link._a_to_b.receiver

        def watch(packet):
            if packet.transport.pkt_type == PacketType.ACK:
                acks.append(packet)
            original(packet)

        bed.link._a_to_b.receiver = watch
        run_calls(bed, csock, 16)  # two full batches of 8
        bed.loop.run(until=bed.loop.now + 1e-3)  # let the flush timer fire
        assert len(acks) <= 3  # 2 full batches (+ possible timer flush)
        acked_ids = sum(packet.transport.msg_len for packet in acks)
        assert acked_ids == 16

    def test_timer_flushes_partial_batch(self):
        bed, ct, st, csock, ssock = build()
        run_calls(bed, csock, 3)  # below the batch size
        bed.loop.run(until=bed.loop.now + 1e-3)
        # The server's response state was freed by the timer-flushed ACK.
        assert not st._outbound, "server response state not freed"

    def test_server_state_freed_after_full_batch(self):
        bed, ct, st, csock, ssock = build()
        run_calls(bed, csock, 8)
        bed.loop.run(until=bed.loop.now + 1e-3)
        assert not st._outbound

    def test_batch_size_configurable(self):
        bed, ct, st, csock, ssock = build()
        ct.ack_batch_size = 1  # per-message acks
        acks = []
        original = bed.link._a_to_b.receiver

        def watch(packet):
            if packet.transport.pkt_type == PacketType.ACK:
                acks.append(packet)
            original(packet)

        bed.link._a_to_b.receiver = watch
        run_calls(bed, csock, 4)
        bed.loop.run(until=bed.loop.now + 1e-3)
        assert len(acks) >= 3  # one per response (first may coalesce)
