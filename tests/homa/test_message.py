"""Message reassembly tests: segment assembly from TSO packets and resends."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.homa.message import (
    InboundMessage,
    SegmentAssembler,
    sort_circular_ipids,
)


class TestCircularSort:
    def test_plain_ordering(self):
        assert sort_circular_ipids([5, 3, 4]) == [3, 4, 5]

    def test_wrapped_ordering(self):
        assert sort_circular_ipids([0xFFFF, 0, 1]) == [0xFFFF, 0, 1]

    def test_wrap_mid_run(self):
        assert sort_circular_ipids([1, 0xFFFE, 0xFFFF, 0]) == [0xFFFE, 0xFFFF, 0, 1]

    def test_empty(self):
        assert sort_circular_ipids([]) == []

    @given(st.integers(0, 0xFFFF), st.integers(1, 44))
    @settings(max_examples=50, deadline=None)
    def test_any_consecutive_run(self, start, length):
        expected = [(start + i) & 0xFFFF for i in range(length)]
        import random

        shuffled = expected[:]
        random.Random(0).shuffle(shuffled)
        assert sort_circular_ipids(shuffled) == expected


def chunks_of(payload, mss):
    return [payload[i : i + mss] for i in range(0, len(payload), mss)]


class TestSegmentAssembler:
    MSS = 100

    def _payload(self, n):
        return bytes(range(256)) * (n // 256 + 1)

    def test_in_order_tso_packets(self):
        payload = self._payload(350)[:350]
        asm = SegmentAssembler(350, self.MSS)
        for i, chunk in enumerate(chunks_of(payload, self.MSS)):
            asm.add_tso_packet(1000 + i, chunk)
        assert asm.complete and asm.complete_data == payload

    def test_out_of_order_tso_packets(self):
        payload = self._payload(350)[:350]
        asm = SegmentAssembler(350, self.MSS)
        pieces = list(enumerate(chunks_of(payload, self.MSS)))
        for i, chunk in reversed(pieces):
            asm.add_tso_packet(1000 + i, chunk)
        assert asm.complete and asm.complete_data == payload

    def test_ipid_wraparound(self):
        payload = self._payload(300)[:300]
        asm = SegmentAssembler(300, self.MSS)
        for i, chunk in enumerate(chunks_of(payload, self.MSS)):
            asm.add_tso_packet((0xFFFF + i) & 0xFFFF, chunk)
        assert asm.complete and asm.complete_data == payload

    def test_duplicate_tso_packet_ignored(self):
        payload = self._payload(200)[:200]
        asm = SegmentAssembler(200, self.MSS)
        parts = chunks_of(payload, self.MSS)
        asm.add_tso_packet(10, parts[0])
        asm.add_tso_packet(10, parts[0])  # spurious duplicate
        assert asm.spurious == 1
        asm.add_tso_packet(11, parts[1])
        assert asm.complete and asm.complete_data == payload

    def test_pure_explicit_assembly(self):
        # All packets retransmitted with explicit offsets.
        payload = self._payload(250)[:250]
        asm = SegmentAssembler(250, self.MSS)
        for off in (200, 0, 100):
            asm.add_explicit_packet(off, payload[off : off + self.MSS])
        assert asm.complete and asm.complete_data == payload

    def test_mixed_arrivals_wait_for_full_explicit_coverage(self):
        # Packets 0 and 2 arrive via TSO; packet 1 is lost.  A single
        # explicit retransmission of packet 1 is NOT enough: mixing
        # rank-unknown TSO packets with explicit slots is ambiguous, so
        # the assembler waits until explicit coverage is complete (the
        # RESEND machinery re-requests whole segments).
        payload = self._payload(300)[:300]
        asm = SegmentAssembler(300, self.MSS)
        parts = chunks_of(payload, self.MSS)
        asm.add_tso_packet(50, parts[0])
        asm.add_tso_packet(52, parts[2])
        assert not asm.complete
        asm.add_explicit_packet(100, parts[1])
        assert not asm.complete  # ambiguous: keep waiting
        asm.add_explicit_packet(0, parts[0])
        asm.add_explicit_packet(200, parts[2])
        assert asm.complete and asm.complete_data == payload

    def test_ambiguous_mix_never_misassembles(self):
        # The corruption scenario the mixed path allowed: the TSO tail is
        # lost and explicit packets cover the head.  Relative IPID spacing
        # looks consistent, but assembling would misplace every packet.
        payload = self._payload(500)[:500]
        asm = SegmentAssembler(500, self.MSS)
        parts = chunks_of(payload, self.MSS)
        # TSO ranks 0..3 arrive (rank 4 lost); explicit retransmission of
        # slot 0 also arrives (spurious).
        for i in range(4):
            asm.add_tso_packet(70 + i, parts[i])
        asm.add_explicit_packet(0, parts[0])
        assert not asm.complete  # must not guess
        # Full explicit coverage resolves it correctly.
        for slot in (100, 200, 300, 400):
            asm.add_explicit_packet(slot, parts[slot // 100])
        assert asm.complete and asm.complete_data == payload

    def test_spurious_retransmit_after_completion_ignored(self):
        payload = self._payload(200)[:200]
        asm = SegmentAssembler(200, self.MSS)
        parts = chunks_of(payload, self.MSS)
        asm.add_tso_packet(0, parts[0])
        asm.add_tso_packet(1, parts[1])
        assert asm.complete
        asm.add_explicit_packet(0, parts[0])
        assert asm.spurious == 1
        assert asm.complete_data == payload

    def test_pure_tso_preferred_over_ambiguous_mix(self):
        # Original packet and its explicit retransmit both arrive, and all
        # other originals arrive too: pure-TSO assembly wins.
        payload = self._payload(300)[:300]
        asm = SegmentAssembler(300, self.MSS)
        parts = chunks_of(payload, self.MSS)
        asm.add_explicit_packet(100, parts[1])  # spurious retransmit first
        for i, chunk in enumerate(parts):
            asm.add_tso_packet(i, chunk)
        assert asm.complete and asm.complete_data == payload

    def test_bad_explicit_offset_rejected(self):
        asm = SegmentAssembler(200, self.MSS)
        with pytest.raises(ProtocolError):
            asm.add_explicit_packet(55, b"x" * 100)  # not mss-aligned

    def test_single_packet_segment(self):
        asm = SegmentAssembler(40, self.MSS)
        asm.add_tso_packet(999, b"y" * 40)
        assert asm.complete and asm.complete_data == b"y" * 40

    @given(st.integers(1, 1000), st.integers(0, 0xFFFF), st.permutations(range(10)))
    @settings(max_examples=40, deadline=None)
    def test_any_arrival_order_property(self, seg_len, start_ipid, order):
        mss = 100
        payload = (b"0123456789abcdef" * 63)[:seg_len]
        asm = SegmentAssembler(seg_len, mss)
        parts = chunks_of(payload, mss)
        indices = [i for i in order if i < len(parts)]
        for i in indices:
            asm.add_tso_packet((start_ipid + i) & 0xFFFF, parts[i])
        assert asm.complete
        assert asm.complete_data == payload


class TestInboundMessage:
    def _msg(self, wire_len=1000, cap=300, mss=100):
        return InboundMessage(
            msg_id=2, peer_addr=1, peer_port=1, local_port=2,
            wire_len=wire_len, segment_capacity=cap, mss=mss,
        )

    def test_segment_lengths(self):
        msg = self._msg(wire_len=1000, cap=300)
        assert msg.segment_length(0) == 300
        assert msg.segment_length(900) == 100  # final partial segment

    def test_bad_offset_rejected(self):
        msg = self._msg()
        with pytest.raises(ProtocolError):
            msg.segment_length(50)
        with pytest.raises(ProtocolError):
            msg.segment_length(1200)

    def test_assemble_requires_completeness(self):
        msg = self._msg(wire_len=200, cap=300)
        with pytest.raises(ProtocolError):
            msg.assemble()

    def test_full_assembly(self):
        msg = self._msg(wire_len=500, cap=300, mss=100)
        payload = bytes(range(250)) * 2
        for seg_off in (0, 300):
            asm = msg.assembler(seg_off)
            seg = payload[seg_off : seg_off + 300]
            for i in range(0, len(seg), 100):
                asm.add_tso_packet(i // 100, seg[i : i + 100])
            msg.received_bytes += asm.seg_len
        assert msg.complete
        assert msg.assemble() == payload

    def test_missing_ranges(self):
        msg = self._msg(wire_len=700, cap=300)
        asm = msg.assembler(300)
        for i in range(3):
            asm.add_tso_packet(i, b"z" * 100)
        msg.received_bytes += 300
        assert msg.missing_ranges() == [(0, 300), (600, 100)]
