"""Workload size distributions: validation, determinism, moments."""

import random

import pytest

from repro.load import HOMA_W3, HOMA_W4, HOMA_W5, WORKLOADS, CdfSizes, FixedSize


class TestFixedSize:
    def test_degenerate(self):
        d = FixedSize(4096)
        rng = random.Random(0)
        assert {d.sample(rng) for _ in range(10)} == {4096}
        assert d.mean() == 4096.0
        assert d.support() == (4096,)
        assert d.name == "fixed4096"

    def test_bad_size(self):
        with pytest.raises(ValueError):
            FixedSize(0)


class TestCdfSizes:
    def test_validation(self):
        with pytest.raises(ValueError):
            CdfSizes("empty", [])
        with pytest.raises(ValueError):
            CdfSizes("unsorted", [(512, 0.5), (256, 1.0)])
        with pytest.raises(ValueError):
            CdfSizes("dup", [(256, 0.5), (256, 1.0)])
        with pytest.raises(ValueError):
            CdfSizes("descending", [(256, 0.8), (512, 0.5)])
        with pytest.raises(ValueError):
            CdfSizes("short", [(256, 0.5), (512, 0.9)])  # never reaches 1.0

    def test_probabilities_sum_to_one(self):
        for dist in WORKLOADS.values():
            probs = dist.probabilities()
            assert abs(sum(p for _, p in probs) - 1.0) < 1e-9
            assert all(p > 0 for _, p in probs)

    def test_mean_matches_point_masses(self):
        d = CdfSizes("half", [(100, 0.5), (300, 1.0)])
        assert d.mean() == pytest.approx(200.0)

    def test_samples_stay_in_support(self):
        rng = random.Random(7)
        support = set(HOMA_W4.support())
        assert all(HOMA_W4.sample(rng) in support for _ in range(500))

    def test_sampling_is_seed_deterministic(self):
        rng1, rng2 = random.Random(42), random.Random(42)
        assert [HOMA_W5.sample(rng1) for _ in range(200)] == [
            HOMA_W5.sample(rng2) for _ in range(200)
        ]

    def test_shapes(self):
        # W3 is tiny-RPC dominated; W5 is large-transfer dominated.
        rng = random.Random(1)
        w3 = [HOMA_W3.sample(rng) for _ in range(2000)]
        w5 = [HOMA_W5.sample(rng) for _ in range(2000)]
        assert sorted(w3)[len(w3) // 2] <= 256
        assert sorted(w5)[len(w5) // 2] >= 8192

    def test_registry(self):
        assert set(WORKLOADS) == {"w3", "w4", "w5"}
        for name, dist in WORKLOADS.items():
            assert dist.name == name
            assert dist.support() == tuple(sorted(dist.support()))
