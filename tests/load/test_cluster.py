"""The RPC integrity protocol and cluster harness plumbing."""

import pytest

from repro.load.cluster import (
    HEADER_SIZE,
    MIN_MESSAGE,
    ClusterHarness,
    build_request,
    handle_request,
    verify_response,
)
from repro.load.cluster import _fill


class TestFill:
    def test_length_and_determinism(self):
        assert len(_fill(7, 100)) == 100
        assert _fill(7, 100) == _fill(7, 100)
        assert _fill(7, 100) != _fill(8, 100)

    def test_position_dependence(self):
        # Swapping two aligned 8-byte blocks must change the bytes —
        # that is what catches reassembly placing a record at the wrong
        # offset even when no byte of the record itself is corrupted.
        fill = _fill(3, 64)
        swapped = fill[8:16] + fill[0:8] + fill[16:]
        assert len(swapped) == len(fill)
        assert swapped != fill


class TestProtocol:
    def test_roundtrip(self):
        request = build_request(serial=5, size=256, response_size=64)
        assert len(request) == 256
        response, ok = handle_request(request)
        assert ok
        assert len(response) == 64
        assert verify_response(response, serial=5, response_size=64)

    def test_minimum_sizes_enforced(self):
        with pytest.raises(ValueError):
            build_request(1, MIN_MESSAGE - 1, 64)
        with pytest.raises(ValueError):
            build_request(1, 256, MIN_MESSAGE - 1)

    def test_corrupt_request_detected_and_answered(self):
        request = bytearray(build_request(9, 256, 64))
        request[HEADER_SIZE + 10] ^= 0xFF
        response, ok = handle_request(bytes(request))
        assert not ok
        # The server still answers (status 2) so the client counts the
        # error instead of timing out, and the client rejects the verdict.
        assert not verify_response(response, serial=9, response_size=64)

    def test_swapped_blocks_detected(self):
        request = build_request(9, 256, 64)
        tail = request[HEADER_SIZE:]
        swapped = request[:HEADER_SIZE] + tail[8:16] + tail[:8] + tail[16:]
        _, ok = handle_request(swapped)
        assert not ok

    def test_response_checks(self):
        request = build_request(5, 256, 64)
        response, _ = handle_request(request)
        assert not verify_response(response, serial=6, response_size=64)
        assert not verify_response(response[:-1], serial=5, response_size=64)
        assert not verify_response(response, serial=5, response_size=63)
        corrupted = response[:-1] + bytes([response[-1] ^ 1])
        assert not verify_response(corrupted, serial=5, response_size=64)


class TestHarnessValidation:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            ClusterHarness(None, "quic")
