"""TenantLoadEngine: validation, per-tenant accounting, determinism."""

import pytest

from repro.bench.loaded import LOAD_HOMA_CONFIG
from repro.errors import ReproError
from repro.load import FixedSize, TenantLoadEngine, TenantWorkload
from repro.tenancy import IsolationConfig, Tenant, TenantFabric
from repro.testbed import ClosTestbed

TENANTS = [Tenant("victim", 0), Tenant("aggr", 1, rate_fraction=0.5)]


def _fabric(enabled=False):
    bed = ClosTestbed.leaf_spine(
        num_racks=2, hosts_per_rack=2, num_spines=2, num_app_cores=4, seed=1
    )
    fabric = TenantFabric(
        bed,
        [Tenant(t.name, t.tid, t.weight, t.rate_fraction) for t in TENANTS],
        isolation=IsolationConfig(enabled=enabled),
        config=LOAD_HOMA_CONFIG,
        seed=3,
    )
    return bed, fabric


def _engine(fabric, loads=(0.1, 0.3), duration=0.1e-3, seed=7):
    workloads = [
        TenantWorkload(tenant, FixedSize(4096), load)
        for tenant, load in zip(fabric.registry, loads)
    ]
    return TenantLoadEngine(fabric, workloads, duration=duration, seed=seed)


class TestValidation:
    def test_load_fraction_bounds(self):
        for load in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ReproError):
                TenantWorkload(TENANTS[0], FixedSize(4096), load)

    def test_tiny_messages_rejected(self):
        _bed, fabric = _fabric()
        with pytest.raises(ReproError):
            TenantLoadEngine(
                fabric,
                [TenantWorkload(fabric.registry.by_name("victim"),
                                FixedSize(8), 0.1)],
                duration=1e-4,
            )

    def test_empty_workloads_rejected(self):
        _bed, fabric = _fabric()
        with pytest.raises(ReproError):
            TenantLoadEngine(fabric, [], duration=1e-4)


class TestRun:
    def test_every_issued_rpc_completes_per_tenant(self):
        _bed, fabric = _fabric()
        results = _engine(fabric).run()
        assert set(results) == {"victim", "aggr"}
        for r in results.values():
            assert r.issued > 0
            assert r.completed == r.issued
            assert r.failed == 0
            assert r.integrity_errors == 0
            assert r.p99 >= r.p50 >= 1.0

    def test_heavier_tenant_issues_more(self):
        _bed, fabric = _fabric()
        results = _engine(fabric).run()
        assert results["aggr"].issued > results["victim"].issued

    def test_calibration_covers_both_path_classes(self):
        _bed, fabric = _fabric()
        engine = _engine(fabric)
        engine.calibrate()
        for r in engine.results.values():
            assert (4096, False) in r.baseline_rtt
            assert (4096, True) in r.baseline_rtt


class TestDeterminism:
    def test_same_seed_same_tails(self):
        runs = []
        for _ in range(2):
            _bed, fabric = _fabric()
            results = _engine(fabric).run()
            runs.append({
                name: (r.issued, r.completed, r.p50, r.p99)
                for name, r in results.items()
            })
        assert runs[0] == runs[1]

    def test_isolation_replays_identical_arrivals(self):
        # The bench's strict p99 comparison requires both modes to
        # sample the same arrival processes: issued counts must match
        # exactly with isolation off and on.
        issued = {}
        for enabled in (False, True):
            _bed, fabric = _fabric(enabled)
            results = _engine(fabric).run()
            issued[enabled] = {
                name: r.issued for name, r in results.items()
            }
        assert issued[False] == issued[True]

    def test_different_seed_different_arrivals(self):
        totals = []
        for seed in (7, 8):
            _bed, fabric = _fabric()
            results = _engine(fabric, seed=seed).run()
            totals.append(
                tuple(sorted((n, r.issued) for n, r in results.items()))
            )
        assert totals[0] != totals[1]
