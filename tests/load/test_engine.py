"""Open-loop engine: calibration, slowdown accounting, determinism."""

import pytest

from repro.load import ClusterHarness, FixedSize, HOMA_W4, OpenLoopEngine, wire_bytes
from repro.net.headers import HEADERS_SIZE
from repro.testbed import ClosTestbed


def _engine(system="homa", load=0.2, duration=0.1e-3, seed=3, hosts_per_rack=1):
    bed = ClosTestbed.leaf_spine(
        num_racks=2, hosts_per_rack=hosts_per_rack, num_spines=2, seed=1
    )
    harness = ClusterHarness(bed, system)
    return OpenLoopEngine(
        harness, FixedSize(16384), load=load, duration=duration, seed=seed
    )


class TestWireBytes:
    def test_single_packet(self):
        assert wire_bytes(100, mtu=1500) == 100 + HEADERS_SIZE

    def test_multi_packet(self):
        mss = 1500 - HEADERS_SIZE
        size = 3 * mss + 1  # spills into a fourth packet
        assert wire_bytes(size, mtu=1500) == size + 4 * HEADERS_SIZE


class TestValidation:
    def test_load_fraction_bounds(self):
        for load in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(ValueError):
                _engine(load=load)

    def test_tiny_messages_rejected(self):
        bed = ClosTestbed.leaf_spine(num_racks=2, hosts_per_rack=1, num_spines=2)
        harness = ClusterHarness(bed, "homa")
        with pytest.raises(ValueError):
            OpenLoopEngine(harness, FixedSize(8), load=0.5, duration=1e-4)


class TestCalibration:
    def test_both_path_classes_measured(self):
        engine = _engine(hosts_per_rack=2)
        baselines = engine.calibrate()
        assert set(baselines) == {(16384, False), (16384, True)}
        # Cross-rack adds two switch hops, so its unloaded RTT is larger.
        assert baselines[(16384, True)] > baselines[(16384, False)]

    def test_single_host_racks_fall_back_to_cross(self):
        engine = _engine(hosts_per_rack=1)
        baselines = engine.calibrate()
        assert baselines[(16384, False)] == baselines[(16384, True)]

    def test_cdf_support_calibrated_per_size(self):
        bed = ClosTestbed.leaf_spine(num_racks=2, hosts_per_rack=2, num_spines=2)
        harness = ClusterHarness(bed, "homa")
        engine = OpenLoopEngine(harness, HOMA_W4, load=0.5, duration=1e-4)
        baselines = engine.calibrate()
        assert {s for s, _ in baselines} == set(HOMA_W4.support())


class TestLoadedRun:
    def test_open_loop_run_completes_clean(self):
        result = _engine().run()
        assert result.issued > 0
        assert result.completed == result.issued
        assert result.failed == 0
        assert result.integrity_errors == 0
        assert result.slowdowns.count == result.completed
        assert result.per_size[16384].count == result.completed
        # Loaded RTTs can never beat the unloaded baseline.
        assert result.p50 >= 1.0
        assert result.p99 >= result.p50
        assert result.achieved_bytes > 0
        assert sum(result.spine_spread) > 0

    def test_same_seed_replays_identically(self):
        a = _engine(seed=5).run()
        b = _engine(seed=5).run()
        assert a.issued == b.issued
        assert a.completed == b.completed
        assert a.p50 == b.p50
        assert a.p99 == b.p99
        assert a.spine_spread == b.spine_spread

    def test_different_seed_differs(self):
        a = _engine(seed=5).run()
        b = _engine(seed=6).run()
        assert (a.issued, a.p99) != (b.issued, b.p99)

    def test_obs_histogram_is_shared(self):
        bed = ClosTestbed.leaf_spine(num_racks=2, hosts_per_rack=1, num_spines=2)
        obs = bed.enable_obs()
        harness = ClusterHarness(bed, "homa")
        engine = OpenLoopEngine(
            harness, FixedSize(16384), load=0.2, duration=0.1e-3, seed=3
        )
        result = engine.run()
        snap = obs.snapshot()["metrics"]["load.slowdown"]
        assert snap["count"] == result.completed
