"""IncidentEngine: timeline validation, phase tagging, metric finalisation."""

import pytest

from repro.errors import ReproError
from repro.homa import HomaConfig
from repro.load import ClusterHarness, FixedSize
from repro.load.incident import PHASES, IncidentEngine
from repro.net.domain_faults import IncidentEvent
from repro.resilience import KitConfig, ResilienceKit
from repro.testbed import ClosTestbed
from repro.units import KB, USEC

FAULT_AT = 50 * USEC
REVIVE_AT = 120 * USEC
DURATION = 0.25e-3

#: Tight resends so the outage window clears within the tiny run.
CONFIG = HomaConfig(
    unscheduled_bytes=16 * KB, grant_window=16 * KB,
    resend_interval=100 * USEC, max_resends=100,
)


def _bed(ctrl=False):
    bed = ClosTestbed.leaf_spine(num_racks=2, hosts_per_rack=2, num_spines=2, seed=1)
    if ctrl:
        bed.enable_ctrl()
    return bed


def _spine_timeline():
    return [
        IncidentEvent(FAULT_AT, "spine_down", 0),
        IncidentEvent(REVIVE_AT, "spine_up", 0),
    ]


def _engine(bed, timeline, *, kit=None, watch=True, reestablish=False, **kw):
    harness = ClusterHarness(bed, "smt", config=CONFIG)
    controller = bed.domain_controller()
    if watch:
        controller.watch_spines(interval=15 * USEC, miss_threshold=2, resalt=True)
    return IncidentEngine(
        harness, FixedSize(2048), load=0.15, duration=DURATION,
        controller=controller, timeline=timeline, kit=kit,
        reestablish_sessions=reestablish, seed=7, **kw,
    )


class TestValidation:
    def test_controller_and_harness_must_share_a_bed(self):
        bed, other = _bed(), _bed()
        harness = ClusterHarness(bed, "smt", config=CONFIG)
        controller = other.domain_controller()
        with pytest.raises(ReproError, match="share one testbed"):
            IncidentEngine(
                harness, FixedSize(2048), load=0.15, duration=DURATION,
                controller=controller, timeline=_spine_timeline(),
            )

    def test_timeline_needs_a_kill_and_a_revival(self):
        for timeline in (
            [],
            [IncidentEvent(FAULT_AT, "spine_down", 0)],
            [IncidentEvent(REVIVE_AT, "spine_up", 0)],
        ):
            with pytest.raises(ReproError, match="kill and a revival"):
                _engine(_bed(), timeline, watch=False)

    def test_revival_must_land_inside_the_window(self):
        bed = _bed()
        timeline = [
            IncidentEvent(FAULT_AT, "spine_down", 0),
            IncidentEvent(DURATION + 10 * USEC, "spine_up", 0),
        ]
        with pytest.raises(ReproError, match="inside the loaded window"):
            _engine(bed, timeline, watch=False)

    def test_reestablish_requires_the_control_plane(self):
        bed = _bed(ctrl=False)
        timeline = [
            IncidentEvent(FAULT_AT, "replica_crash", 3),
            IncidentEvent(REVIVE_AT, "replica_revive", 3),
        ]
        with pytest.raises(ReproError, match="enable_ctrl"):
            _engine(bed, timeline, watch=False, reestablish=True)


class TestPhaseTagging:
    def test_every_rpc_lands_in_exactly_one_phase(self):
        engine = _engine(_bed(), _spine_timeline())
        result = engine.run()
        m = engine.metrics
        assert sum(m.phase_issued.values()) == result.issued
        assert sum(m.phase_completed.values()) == result.completed
        assert sum(m.phase_failed.values()) == result.failed
        # The load ran long enough that every phase saw traffic.
        assert all(m.phase_issued[p] > 0 for p in PHASES), m.phase_issued
        # Histograms only hold completions of their own phase.
        for p in PHASES:
            assert len(m.phase_slowdowns[p]) == m.phase_completed[p]

    def test_phase_is_keyed_on_issue_time(self):
        # An RPC issued before the fault counts as "before" even if its
        # completion straddles the outage; the boundary is the issue
        # stamp, not the completion stamp.
        engine = _engine(_bed(), _spine_timeline())
        engine.calibrate()
        start = engine.bed.loop.now
        engine._load_start = start
        assert engine._phase(start) == "before"
        assert engine._phase(start + FAULT_AT - 1e-9) == "before"
        assert engine._phase(start + FAULT_AT + 1e-12) == "during"
        assert engine._phase(start + REVIVE_AT - 1e-9) == "during"
        assert engine._phase(start + REVIVE_AT + 1e-12) == "after"


class TestMetricFinalisation:
    def test_spine_incident_metrics(self):
        engine = _engine(_bed(), _spine_timeline())
        result = engine.run()
        m = engine.metrics
        assert result.completed == result.issued
        assert m.fault_at == FAULT_AT and m.revive_at == REVIVE_AT
        # The watcher detected the kill within its bound.
        assert m.detection_time is not None
        assert 0 < m.detection_time <= 15 * USEC * 2 + 1e-12
        # Something was issued during the outage, so the backlog-drain
        # clock ran (it can legitimately be zero if the last during-RPC
        # finished before the revival, but never negative).
        assert m.recovery_time >= 0.0
        assert m.reconvergences >= 1
        assert m.blackholed >= 1
        assert m.kit is None and m.rehandshake is None

    def test_kit_metrics_reported_when_kit_on(self):
        bed = _bed()
        kit = ResilienceKit(
            bed.loop,
            KitConfig(attempt_timeout=150 * USEC, max_attempts=10,
                      budget_capacity=1000.0, budget_refund=1.0),
            seed=5,
        )
        engine = _engine(bed, _spine_timeline(), kit=kit)
        result = engine.run()
        m = engine.metrics
        assert result.completed == result.issued
        assert m.kit is not None
        assert m.kit["calls"] == result.issued
        assert set(m.kit) == {
            "calls", "retries", "fail_fast", "parked", "fallbacks",
            "exhausted", "budget_denied",
        }
        # Per-destination heartbeats were armed for every host.
        assert len(kit._monitors) == len(engine.harness.hosts)

    def test_replica_crash_reports_the_rehandshake_storm(self):
        bed = _bed(ctrl=True)
        timeline = [
            IncidentEvent(FAULT_AT, "replica_crash", 3),
            IncidentEvent(REVIVE_AT, "replica_revive", 3),
        ]
        engine = _engine(bed, timeline, watch=False, reestablish=True)
        result = engine.run()
        m = engine.metrics
        assert result.completed == result.issued
        rh = m.rehandshake
        assert rh is not None
        # Every surviving host re-established exactly one session, and
        # the cold-restarted pools forced inline keygen server-side.
        assert rh["completed"] == len(engine.harness.hosts) - 1
        assert rh["server_inline_keygens"] == rh["completed"]
        assert rh["max_duration"] > 0.0

    def test_fixed_seed_is_deterministic(self):
        def once():
            engine = _engine(_bed(), _spine_timeline())
            result = engine.run()
            m = engine.metrics
            return (
                result.issued, result.completed, result.failed,
                m.detection_time, m.recovery_time, m.blackholed,
                {p: m.phase_p99(p) for p in PHASES},
            )

        assert once() == once()
