"""TLS 1.3 key schedule tests."""

import pytest

from repro.crypto.kdf import transcript_hash
from repro.tls.keyschedule import KeySchedule, TrafficKeys


@pytest.fixture()
def schedule():
    ks = KeySchedule()
    ks.inject_ecdhe(b"\xab" * 32)
    return ks


class TestLadder:
    def test_directions_get_distinct_secrets(self, schedule):
        th = transcript_hash(b"msgs")
        assert schedule.client_handshake_traffic_secret(
            th
        ) != schedule.server_handshake_traffic_secret(th)

    def test_handshake_and_app_secrets_differ(self, schedule):
        th = transcript_hash(b"msgs")
        assert schedule.client_handshake_traffic_secret(
            th
        ) != schedule.client_app_traffic_secret(th)

    def test_transcript_binds_secrets(self, schedule):
        a = schedule.client_app_traffic_secret(transcript_hash(b"one"))
        b = schedule.client_app_traffic_secret(transcript_hash(b"two"))
        assert a != b

    def test_same_inputs_same_outputs(self):
        th = transcript_hash(b"x")
        outs = []
        for _ in range(2):
            ks = KeySchedule()
            ks.inject_ecdhe(b"\x01" * 32)
            outs.append(ks.client_app_traffic_secret(th))
        assert outs[0] == outs[1]

    def test_psk_changes_early_secret(self):
        plain = KeySchedule()
        psk = KeySchedule(psk=b"\x42" * 32)
        assert plain.binder_key() != psk.binder_key()

    def test_ecdhe_changes_app_secrets(self):
        th = transcript_hash(b"x")
        a = KeySchedule()
        a.inject_ecdhe(b"\x01" * 32)
        b = KeySchedule()
        b.inject_ecdhe(b"\x02" * 32)
        assert a.client_app_traffic_secret(th) != b.client_app_traffic_secret(th)

    def test_resumption_psk_derivation(self, schedule):
        res = schedule.resumption_master_secret(transcript_hash(b"full"))
        psk1 = KeySchedule.psk_from_resumption(res, b"\x00")
        psk2 = KeySchedule.psk_from_resumption(res, b"\x01")
        assert psk1 != psk2 and len(psk1) == 32


class TestTrafficKeys:
    def test_sizes(self):
        keys = TrafficKeys.from_secret(bytes(32))
        assert len(keys.key) == 16  # AES-128
        assert len(keys.iv) == 12

    def test_key_and_iv_differ_per_secret(self):
        a = TrafficKeys.from_secret(b"\x01" * 32)
        b = TrafficKeys.from_secret(b"\x02" * 32)
        assert a.key != b.key and a.iv != b.iv


class TestFinished:
    def test_finished_mac_binds_transcript(self, schedule):
        secret = schedule.client_handshake_traffic_secret(transcript_hash(b"a"))
        mac1 = KeySchedule.finished_mac(secret, transcript_hash(b"t1"))
        mac2 = KeySchedule.finished_mac(secret, transcript_hash(b"t2"))
        assert mac1 != mac2

    def test_finished_mac_binds_secret(self, schedule):
        th = transcript_hash(b"t")
        s1 = schedule.client_handshake_traffic_secret(transcript_hash(b"a"))
        s2 = schedule.server_handshake_traffic_secret(transcript_hash(b"a"))
        assert KeySchedule.finished_mac(s1, th) != KeySchedule.finished_mac(s2, th)
