"""TLS 1.3 record layer tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import new_aead
from repro.errors import AuthenticationError, ProtocolError
from repro.tls.constants import (
    CONTENT_ALERT,
    CONTENT_APPLICATION_DATA,
    CONTENT_HANDSHAKE,
    MAX_RECORD_PAYLOAD,
    RECORD_HEADER_SIZE,
    RECORD_OVERHEAD,
)
from repro.tls.record import (
    RecordProtection,
    encode_record_header,
    parse_record_header,
)

KEY = bytes(16)
IV = bytes(12)


def make_pair():
    return (
        RecordProtection(new_aead("aes-128-gcm", KEY), IV),
        RecordProtection(new_aead("aes-128-gcm", KEY), IV),
    )


class TestHeader:
    def test_roundtrip(self):
        header = encode_record_header(100)
        outer, length = parse_record_header(header)
        assert outer == CONTENT_APPLICATION_DATA and length == 100

    def test_truncated_rejected(self):
        with pytest.raises(ProtocolError):
            parse_record_header(b"\x17\x03")

    def test_bad_version_rejected(self):
        with pytest.raises(ProtocolError):
            parse_record_header(b"\x17\x02\x00\x00\x10")


class TestSealOpen:
    def test_roundtrip(self):
        sealer, opener = make_pair()
        record = sealer.seal(b"hello")
        out = opener.open(record)
        assert out.payload == b"hello"
        assert out.content_type == CONTENT_APPLICATION_DATA
        assert out.seqno == 0

    def test_record_overhead_constant_matches(self):
        sealer, _ = make_pair()
        record = sealer.seal(b"x" * 100)
        assert len(record) == 100 + RECORD_OVERHEAD

    def test_implicit_counter_advances(self):
        sealer, opener = make_pair()
        r0 = sealer.seal(b"a")
        r1 = sealer.seal(b"b")
        assert opener.open(r0).seqno == 0
        assert opener.open(r1).seqno == 1

    def test_out_of_order_records_rejected_implicit_mode(self):
        # TLS/TCP semantics: a skipped record desynchronises the stream.
        sealer, opener = make_pair()
        _r0 = sealer.seal(b"a")
        r1 = sealer.seal(b"b")
        with pytest.raises(AuthenticationError):
            opener.open(r1)  # expects seqno 0, record was sealed with 1

    def test_explicit_seqno_allows_any_order(self):
        # The property SMT builds on: per-message spaces open out of order.
        sealer, opener = make_pair()
        r5 = sealer.seal(b"five", seqno=5)
        r2 = sealer.seal(b"two", seqno=2)
        assert opener.open(r2, seqno=2).payload == b"two"
        assert opener.open(r5, seqno=5).payload == b"five"

    def test_explicit_seqno_mismatch_fails(self):
        sealer, opener = make_pair()
        record = sealer.seal(b"x", seqno=7)
        with pytest.raises(AuthenticationError):
            opener.open(record, seqno=8)

    def test_duplicate_explicit_seqno_same_ciphertext(self):
        # Deterministic nonce per seqno: needed for resync re-encryption.
        sealer1, _ = make_pair()
        sealer2, _ = make_pair()
        assert sealer1.seal(b"x", seqno=3) == sealer2.seal(b"x", seqno=3)

    def test_content_type_preserved(self):
        sealer, opener = make_pair()
        record = sealer.seal(b"hs", CONTENT_HANDSHAKE)
        assert opener.open(record).content_type == CONTENT_HANDSHAKE

    def test_padding_conceals_length_and_strips(self):
        sealer, opener = make_pair()
        padded = sealer.seal(b"short", padding=100)
        plain = sealer.__class__(new_aead("aes-128-gcm", KEY), IV).seal(b"short")
        assert len(padded) == len(plain) + 100
        assert opener.open(padded).payload == b"short"

    def test_padding_with_trailing_zero_payload(self):
        # Zero bytes at the end of the payload must survive pad stripping.
        sealer, opener = make_pair()
        payload = b"data\x00\x00"
        record = sealer.seal(payload, padding=10)
        assert opener.open(record).payload == payload

    def test_max_payload_enforced(self):
        sealer, _ = make_pair()
        with pytest.raises(ProtocolError):
            sealer.seal(bytes(MAX_RECORD_PAYLOAD + 1))

    def test_max_payload_allowed(self):
        sealer, opener = make_pair()
        record = sealer.seal(bytes(MAX_RECORD_PAYLOAD))
        assert len(opener.open(record).payload) == MAX_RECORD_PAYLOAD

    def test_tampered_body_rejected(self):
        sealer, opener = make_pair()
        record = bytearray(sealer.seal(b"payload"))
        record[RECORD_HEADER_SIZE + 2] ^= 1
        with pytest.raises(AuthenticationError):
            opener.open(bytes(record))

    def test_tampered_header_rejected(self):
        sealer, opener = make_pair()
        record = bytearray(sealer.seal(b"payload"))
        record[3] ^= 1  # length field is AAD
        with pytest.raises(ProtocolError):
            opener.open(bytes(record))

    def test_failed_open_does_not_advance_counter(self):
        sealer, opener = make_pair()
        good0 = sealer.seal(b"a")
        good1 = sealer.seal(b"b")
        bad = bytearray(good0)
        bad[-1] ^= 1
        with pytest.raises(AuthenticationError):
            opener.open(bytes(bad))
        assert opener.open(good0).payload == b"a"
        assert opener.open(good1).payload == b"b"

    def test_seqno_out_of_range(self):
        sealer, _ = make_pair()
        with pytest.raises(ProtocolError):
            sealer.seal(b"x", seqno=1 << 64)

    def test_alert_content_type(self):
        sealer, opener = make_pair()
        assert opener.open(sealer.seal(b"\x02\x28", CONTENT_ALERT)).content_type == CONTENT_ALERT


class TestNonceDerivation:
    def test_nonce_xors_seqno_into_iv(self):
        protection = RecordProtection(new_aead("aes-128-gcm", KEY), b"\xff" * 12)
        nonce = protection.nonce_for(1)
        assert nonce[-1] == 0xFE
        assert nonce[:-1] == b"\xff" * 11

    def test_distinct_seqnos_distinct_nonces(self):
        protection = RecordProtection(new_aead("aes-128-gcm", KEY), IV)
        nonces = {protection.nonce_for(i) for i in range(100)}
        assert len(nonces) == 100


class TestProperties:
    @given(st.binary(max_size=500), st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_any_seqno(self, payload, seqno):
        sealer, opener = make_pair()
        record = sealer.seal(payload, seqno=seqno)
        assert opener.open(record, seqno=seqno).payload == payload
