"""Handshake message framing tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.tls.messages import HandshakeMessage


class TestEncodeDecode:
    def test_roundtrip(self):
        msg = HandshakeMessage(1, {1: b"rand", 3: b"\x04" * 65})
        decoded, consumed = HandshakeMessage.decode(msg.encode())
        assert decoded == msg and consumed == len(msg.encode())

    def test_empty_fields(self):
        msg = HandshakeMessage(20, {})
        decoded, _ = HandshakeMessage.decode(msg.encode())
        assert decoded.fields == {}

    def test_decode_all_flight(self):
        flight = HandshakeMessage(1, {1: b"a"}).encode() + HandshakeMessage(
            2, {2: b"b"}
        ).encode()
        messages = HandshakeMessage.decode_all(flight)
        assert [m.msg_type for m in messages] == [1, 2]

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError):
            HandshakeMessage.decode(b"\x01\x00")

    def test_truncated_body_rejected(self):
        data = HandshakeMessage(1, {1: b"abc"}).encode()
        with pytest.raises(ProtocolError):
            HandshakeMessage.decode(data[:-1])

    def test_truncated_field_rejected(self):
        # Field claims 10 bytes, body ends after 2.
        bad = bytes((1,)) + (6).to_bytes(3, "big") + (1).to_bytes(2, "big") + (
            10
        ).to_bytes(2, "big")
        with pytest.raises(ProtocolError):
            HandshakeMessage.decode(bad + b"xx")

    def test_duplicate_field_rejected(self):
        field = (1).to_bytes(2, "big") + (1).to_bytes(2, "big") + b"x"
        body = field + field
        data = bytes((1,)) + len(body).to_bytes(3, "big") + body
        with pytest.raises(ProtocolError):
            HandshakeMessage.decode(data)

    def test_require_missing_field(self):
        msg = HandshakeMessage(1, {})
        with pytest.raises(ProtocolError):
            msg.require(5)

    def test_oversized_field_rejected(self):
        with pytest.raises(ProtocolError):
            HandshakeMessage(1, {1: bytes(70_000)}).encode()

    @given(
        st.integers(0, 255),
        st.dictionaries(st.integers(0, 0xFFFF), st.binary(max_size=200), max_size=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, msg_type, fields):
        msg = HandshakeMessage(msg_type, fields)
        decoded, consumed = HandshakeMessage.decode(msg.encode())
        assert decoded.msg_type == msg_type
        assert decoded.fields == fields
        assert consumed == len(msg.encode())
