"""Handshake cost-model tests (Table 2)."""

import pytest

from repro.crypto.cert import KEY_ALG_ECDSA, KEY_ALG_RSA
from repro.errors import ProtocolError
from repro.tls.handshake import TraceOp
from repro.tls.timing import HandshakeCostModel, HandshakeTimer
from repro.units import USEC


@pytest.fixture()
def model():
    return HandshakeCostModel()


class TestBaseCosts:
    def test_table2_fixed_rows(self, model):
        # Spot-check the calibrated values against Table 2.
        assert model.op_cost(TraceOp("S2.2", {})) == pytest.approx(265.0 * USEC)
        assert model.op_cost(TraceOp("C1.1", {})) == pytest.approx(61.3 * USEC)
        assert model.op_cost(TraceOp("C2.2", {})) == pytest.approx(88.7 * USEC)
        assert model.op_cost(TraceOp("S3", {})) == pytest.approx(44.4 * USEC)

    def test_sign_costs_by_algorithm(self, model):
        ecdsa = model.op_cost(TraceOp("S2.5", {"alg": KEY_ALG_ECDSA}))
        rsa = model.op_cost(TraceOp("S2.5", {"alg": KEY_ALG_RSA}))
        assert ecdsa == pytest.approx(137.6 * USEC)
        assert rsa == pytest.approx(1344.0 * USEC)
        # Table 2: RSA signing is ~10x ECDSA.
        assert 8 < rsa / ecdsa < 12

    def test_verify_costs_by_algorithm(self, model):
        ecdsa = model.op_cost(TraceOp("C4.2", {"alg": KEY_ALG_ECDSA}))
        rsa = model.op_cost(TraceOp("C4.2", {"alg": KEY_ALG_RSA}))
        assert ecdsa == pytest.approx(196.3 * USEC)
        assert rsa == pytest.approx(67.1 * USEC)
        # Table 2: ECDSA verification is ~3x RSA.
        assert 2 < ecdsa / rsa < 4

    def test_cert_verify_single_link_matches_table2(self, model):
        cost = model.op_cost(TraceOp("C3.2", {"chain_len": 1, "short_chain": False}))
        assert cost == pytest.approx(483.4 * USEC)

    def test_cert_verify_scales_with_chain(self, model):
        one = model.op_cost(TraceOp("C3.2", {"chain_len": 1}))
        two = model.op_cost(TraceOp("C3.2", {"chain_len": 2}))
        assert two - one == pytest.approx(196.3 * USEC)

    def test_short_chain_cuts_cost_about_half(self, model):
        # Paper §4.5.1: "speeds up the Verify Cert operation by ~52 %".
        full = model.op_cost(TraceOp("C3.2", {"chain_len": 1, "short_chain": False}))
        short = model.op_cost(TraceOp("C3.2", {"chain_len": 1, "short_chain": True}))
        assert short / full == pytest.approx(0.48, abs=0.01)

    def test_unknown_op_rejected(self, model):
        with pytest.raises(ProtocolError):
            model.op_cost(TraceOp("Z9", {}))

    def test_override(self):
        model = HandshakeCostModel(overrides_us={"S1": 10.0})
        assert model.op_cost(TraceOp("S1", {})) == pytest.approx(10.0 * USEC)


class TestTotals:
    def test_total_sums(self, model):
        trace = [TraceOp("S1", {}), TraceOp("S3", {})]
        assert model.total(trace) == pytest.approx((1.8 + 44.4) * USEC)

    def test_breakdown_rows(self, model):
        rows = model.breakdown([TraceOp("S1", {}), TraceOp("C5", {})])
        assert rows[0] == ("S1", "Process CHLO", pytest.approx(1.8))
        assert rows[1][1] == "Process Finished"

    def test_timer_incremental_charging(self, model):
        timer = HandshakeTimer(model)
        trace = [TraceOp("S1", {})]
        timer.charge(trace)
        trace.append(TraceOp("S3", {}))
        timer.charge(trace, already_charged=1)
        assert timer.total_time == pytest.approx((1.8 + 44.4) * USEC)
        assert len(timer.ops) == 2
