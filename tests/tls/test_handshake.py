"""TLS 1.3 handshake state-machine tests."""

import random

import pytest

from repro.crypto.ca import CertificateAuthority
from repro.crypto.cert import KEY_ALG_ECDSA, KEY_ALG_RSA
from repro.crypto.ecdh import EcdhKeyPair
from repro.crypto.ecdsa import EcdsaKeyPair
from repro.crypto.rsa import RsaKeyPair
from repro.errors import AuthenticationError, ProtocolError
from repro.tls.handshake import (
    ClientHandshake,
    HandshakeConfig,
    ServerCredentials,
    ServerHandshake,
)
from repro.tls.messages import HandshakeMessage


@pytest.fixture(scope="module")
def pki():
    rng = random.Random(1)
    ca = CertificateAuthority("dc-root", rng)
    server_key = EcdsaKeyPair.generate(rng)
    leaf = ca.issue("server", KEY_ALG_ECDSA, server_key.public_bytes())
    creds = ServerCredentials(chain=ca.chain_for(leaf), signing_key=server_key)
    client_key = EcdsaKeyPair.generate(rng)
    client_leaf = ca.issue("client", KEY_ALG_ECDSA, client_key.public_bytes())
    client_creds = ServerCredentials(chain=ca.chain_for(client_leaf), signing_key=client_key)
    return ca, creds, client_creds


def run_handshake(pki, client_cfg=None, server_cfg=None, client_creds=None, cache=None):
    ca, creds, default_client_creds = pki
    roots = (ca.certificate,)
    client_cfg = client_cfg or HandshakeConfig(
        rng=random.Random(2), server_name="server", trust_roots=roots
    )
    server_cfg = server_cfg or HandshakeConfig(rng=random.Random(3), trust_roots=roots)
    client = ClientHandshake(client_cfg, client_creds)
    server = ServerHandshake(server_cfg, creds, session_cache=cache if cache is not None else {})
    flight = server.process_client_hello(client.start())
    server.process_client_flight(client.process_server_flight(flight))
    return client, server


class TestFullHandshake:
    def test_secrets_agree(self, pki):
        client, server = run_handshake(pki)
        assert client.result.client_app_secret == server.result.client_app_secret
        assert client.result.server_app_secret == server.result.server_app_secret

    def test_resumption_master_agrees(self, pki):
        client, server = run_handshake(pki)
        assert client.result.resumption_master == server.result.resumption_master

    def test_no_psk_used(self, pki):
        client, _ = run_handshake(pki)
        assert not client.result.used_psk and client.result.used_ecdhe

    def test_client_saw_server_cert(self, pki):
        client, _ = run_handshake(pki)
        assert client.result.peer_certificate.subject == "server"

    def test_traffic_keys_distinct_per_direction(self, pki):
        client, _ = run_handshake(pki)
        cw, sw = client.result.traffic_keys()
        assert cw != sw

    def test_trace_matches_table2_ops(self, pki):
        client, server = run_handshake(pki)
        assert [op.op_id for op in server.trace] == [
            "S1", "S2.1", "S2.2", "S2.3", "S2.4", "S2.5", "S2.6", "S3",
        ]
        assert [op.op_id for op in client.trace] == [
            "C1.1", "C1.2", "C2.1", "C2.2", "C2.3", "C3.1", "C3.2", "C4.1",
            "C4.2", "C5",
        ]

    def test_pregenerated_keys_skip_keygen_ops(self, pki):
        ca, creds, _ = pki
        roots = (ca.certificate,)
        rng = random.Random(5)
        ccfg = HandshakeConfig(
            rng=rng, server_name="server", trust_roots=roots,
            pregenerated_keypair=EcdhKeyPair.generate(rng),
        )
        scfg = HandshakeConfig(
            rng=rng, trust_roots=roots,
            pregenerated_keypair=EcdhKeyPair.generate(rng),
        )
        client, server = run_handshake(pki, ccfg, scfg)
        assert "C1.1" not in [op.op_id for op in client.trace]
        assert "S2.1" not in [op.op_id for op in server.trace]
        assert client.result.client_app_secret == server.result.client_app_secret

    def test_rsa_server(self, pki):
        ca, _, _ = pki
        rng = random.Random(7)
        rsa_key = RsaKeyPair.generate(1024, rng)
        leaf = ca.issue("server", KEY_ALG_RSA, rsa_key.public_bytes())
        creds = ServerCredentials(
            chain=ca.chain_for(leaf), signing_key=rsa_key, key_alg=KEY_ALG_RSA
        )
        roots = (ca.certificate,)
        client = ClientHandshake(
            HandshakeConfig(rng=random.Random(8), server_name="server", trust_roots=roots)
        )
        server = ServerHandshake(HandshakeConfig(rng=random.Random(9), trust_roots=roots), creds)
        flight = server.process_client_hello(client.start())
        server.process_client_flight(client.process_server_flight(flight))
        assert client.result.client_app_secret == server.result.client_app_secret
        # RSA shows up in the verify op detail, as Table 2's "+" column.
        c42 = next(op for op in client.trace if op.op_id == "C4.2")
        assert c42.detail["alg"] == KEY_ALG_RSA


class TestMutualAuth:
    def test_client_certificate_verified(self, pki):
        ca, _, client_creds = pki
        roots = (ca.certificate,)
        ccfg = HandshakeConfig(
            rng=random.Random(2), server_name="server", trust_roots=roots, mutual_auth=True
        )
        scfg = HandshakeConfig(rng=random.Random(3), trust_roots=roots, mutual_auth=True)
        client, server = run_handshake(pki, ccfg, scfg, client_creds=client_creds)
        assert server.result.peer_certificate.subject == "client"

    def test_missing_client_cert_rejected(self, pki):
        ca, creds, _ = pki
        roots = (ca.certificate,)
        ccfg = HandshakeConfig(
            rng=random.Random(2), server_name="server", trust_roots=roots, mutual_auth=True
        )
        scfg = HandshakeConfig(rng=random.Random(3), trust_roots=roots, mutual_auth=True)
        client = ClientHandshake(ccfg)  # no credentials
        server = ServerHandshake(scfg, creds)
        with pytest.raises(ProtocolError):
            client.process_server_flight(server.process_client_hello(client.start()))


class TestResumption:
    def _establish_and_get_ticket(self, pki, cache):
        client, server = run_handshake(pki, cache=cache)
        ticket_record = server.issue_ticket()
        tickets = client.process_tickets(ticket_record)
        assert len(tickets) == 1
        return tickets[0]

    def test_resumption_with_forward_secrecy(self, pki):
        ca, creds, _ = pki
        roots = (ca.certificate,)
        cache = {}
        ticket = self._establish_and_get_ticket(pki, cache)
        ccfg = HandshakeConfig(
            rng=random.Random(11), server_name="server", trust_roots=roots,
            ticket=ticket, forward_secrecy=True,
        )
        client, server = run_handshake(pki, ccfg, HandshakeConfig(
            rng=random.Random(12), trust_roots=roots), cache=cache)
        assert client.result.used_psk and client.result.used_ecdhe
        assert client.result.client_app_secret == server.result.client_app_secret

    def test_resumption_without_forward_secrecy_skips_ecdhe(self, pki):
        ca, creds, _ = pki
        roots = (ca.certificate,)
        cache = {}
        ticket = self._establish_and_get_ticket(pki, cache)
        ccfg = HandshakeConfig(
            rng=random.Random(11), server_name="server", trust_roots=roots,
            ticket=ticket, forward_secrecy=False,
        )
        client, server = run_handshake(pki, ccfg, HandshakeConfig(
            rng=random.Random(12), trust_roots=roots), cache=cache)
        assert client.result.used_psk and not client.result.used_ecdhe
        assert "C2.2" not in [op.op_id for op in client.trace]
        assert client.result.client_app_secret == server.result.client_app_secret

    def test_resumed_handshake_sends_no_certificate(self, pki):
        ca, creds, _ = pki
        roots = (ca.certificate,)
        cache = {}
        ticket = self._establish_and_get_ticket(pki, cache)
        ccfg = HandshakeConfig(
            rng=random.Random(11), server_name="server", trust_roots=roots, ticket=ticket,
        )
        client, _ = run_handshake(pki, ccfg, HandshakeConfig(
            rng=random.Random(12), trust_roots=roots), cache=cache)
        assert client.result.peer_certificate is None
        assert "C3.2" not in [op.op_id for op in client.trace]

    def test_unknown_ticket_falls_back_to_full(self, pki):
        from repro.tls.handshake import SessionTicket

        ca, creds, _ = pki
        roots = (ca.certificate,)
        bogus = SessionTicket(ticket_id=b"\x00" * 16, psk=b"\x01" * 32, lifetime=100.0)
        ccfg = HandshakeConfig(
            rng=random.Random(11), server_name="server", trust_roots=roots, ticket=bogus,
        )
        client, server = run_handshake(pki, ccfg, cache={})
        assert not client.result.used_psk
        assert client.result.peer_certificate is not None

    def test_corrupted_binder_rejected(self, pki):
        ca, creds, _ = pki
        roots = (ca.certificate,)
        cache = {}
        ticket = self._establish_and_get_ticket(pki, cache)
        import repro.tls.messages as messages

        ccfg = HandshakeConfig(
            rng=random.Random(11), server_name="server", trust_roots=roots, ticket=ticket,
        )
        client = ClientHandshake(ccfg)
        chlo = client.start()
        msg, _ = HandshakeMessage.decode(chlo)
        msg.fields[messages.F_PSK_BINDER] = bytes(32)
        server = ServerHandshake(
            HandshakeConfig(rng=random.Random(12), trust_roots=roots), creds, cache
        )
        with pytest.raises(AuthenticationError):
            server.process_client_hello(msg.encode())


class TestAttacks:
    def test_wrong_server_name_rejected(self, pki):
        ca, creds, _ = pki
        roots = (ca.certificate,)
        ccfg = HandshakeConfig(
            rng=random.Random(2), server_name="other-server", trust_roots=roots
        )
        client = ClientHandshake(ccfg)
        server = ServerHandshake(HandshakeConfig(rng=random.Random(3), trust_roots=roots), creds)
        with pytest.raises(AuthenticationError):
            client.process_server_flight(server.process_client_hello(client.start()))

    def test_untrusted_ca_rejected(self, pki):
        _, creds, _ = pki
        rogue = CertificateAuthority("rogue", random.Random(66))
        ccfg = HandshakeConfig(
            rng=random.Random(2), server_name="server", trust_roots=(rogue.certificate,)
        )
        client = ClientHandshake(ccfg)
        server = ServerHandshake(
            HandshakeConfig(rng=random.Random(3), trust_roots=(rogue.certificate,)), creds
        )
        with pytest.raises(AuthenticationError):
            client.process_server_flight(server.process_client_hello(client.start()))

    def test_tampered_server_flight_rejected(self, pki):
        _, creds, _ = pki
        ca, _, _ = pki
        roots = (ca.certificate,)
        client = ClientHandshake(
            HandshakeConfig(rng=random.Random(2), server_name="server", trust_roots=roots)
        )
        server = ServerHandshake(HandshakeConfig(rng=random.Random(3), trust_roots=roots), creds)
        flight = bytearray(server.process_client_hello(client.start()))
        flight[-1] ^= 1  # inside the encrypted portion
        with pytest.raises(AuthenticationError):
            client.process_server_flight(bytes(flight))

    def test_malformed_chlo_rejected(self, pki):
        _, creds, _ = pki
        server = ServerHandshake(HandshakeConfig(rng=random.Random(3)), creds)
        with pytest.raises(ProtocolError):
            server.process_client_hello(b"\x01\x00\x00")
