"""TSO/GSO tests: the hardware behaviours SMT's framing depends on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net.headers import PROTO_SMT, PROTO_TCP, TransportHeader
from repro.nic.tso import MAX_TSO_PAYLOAD, TsoSegment, gso_split, split_segment


def make_segment(payload_len, proto=PROTO_SMT, mss=1440, tso_offset=0, msg_id=42):
    header = TransportHeader(
        1000, 2000, msg_id, msg_len=payload_len, tso_offset=tso_offset
    )
    return TsoSegment(1, 2, proto, header, bytes(range(256)) * (payload_len // 256 + 1)
                      if payload_len else b"", mss)


def make_exact_segment(payload, proto=PROTO_SMT, mss=1440):
    header = TransportHeader(1000, 2000, 42, msg_len=len(payload))
    return TsoSegment(1, 2, proto, header, payload, mss)


class TestSplit:
    def test_packet_count(self):
        seg = make_exact_segment(bytes(4000), mss=1440)
        assert len(split_segment(seg, 0)) == 3

    def test_payload_reassembles(self):
        payload = bytes(range(256)) * 20
        seg = make_exact_segment(payload, mss=1440)
        packets = split_segment(seg, 100)
        assert b"".join(p.payload for p in packets) == payload

    def test_header_replicated_for_non_tcp(self):
        # TSO copies the transport header to every packet (paper §2.2):
        # msg_id and tso_offset identical across all packets of a segment.
        payload = bytes(5000)
        header = TransportHeader(1, 2, 99, msg_len=5000, tso_offset=64000)
        seg = TsoSegment(1, 2, PROTO_SMT, header, payload, 1440)
        packets = split_segment(seg, 0)
        assert {p.transport.msg_id for p in packets} == {99}
        assert {p.transport.tso_offset for p in packets} == {64000}

    def test_ipid_increments_per_packet(self):
        seg = make_exact_segment(bytes(5000))
        packets = split_segment(seg, 500)
        assert [p.ip.ipid for p in packets] == [500, 501, 502, 503]

    def test_ipid_wraps_16_bits(self):
        seg = make_exact_segment(bytes(3000))
        packets = split_segment(seg, 0xFFFF)
        assert [p.ip.ipid for p in packets] == [0xFFFF, 0, 1]

    def test_tcp_gets_sequence_numbers(self):
        # Real TSO advances TCP sequence numbers per packet...
        header = TransportHeader(1, 2, 1000, msg_len=3000)
        seg = TsoSegment(1, 2, PROTO_TCP, header, bytes(3000), 1440)
        packets = split_segment(seg, 0)
        assert [p.transport.msg_id for p in packets] == [1000, 2440, 3880]

    def test_non_tcp_gets_no_sequence_numbers(self):
        # ...but does NOT write them for unknown protocols (paper §2.2),
        # which is exactly why SMT needs the IPID trick.
        header = TransportHeader(1, 2, 1000, msg_len=3000)
        seg = TsoSegment(1, 2, PROTO_SMT, header, bytes(3000), 1440)
        packets = split_segment(seg, 0)
        assert [p.transport.msg_id for p in packets] == [1000, 1000, 1000]

    def test_segment_end_marker(self):
        packets = split_segment(make_exact_segment(bytes(3000)), 0)
        assert [p.meta["segment_end"] for p in packets] == [False, False, True]

    def test_oversized_segment_rejected(self):
        with pytest.raises(ProtocolError):
            make_exact_segment(bytes(MAX_TSO_PAYLOAD + 1))

    def test_single_small_packet(self):
        packets = split_segment(make_exact_segment(b"tiny"), 7)
        assert len(packets) == 1
        assert packets[0].payload == b"tiny"
        assert packets[0].ip.ipid == 7

    @given(st.integers(min_value=1, max_value=20000), st.sampled_from([536, 1440, 8940]))
    @settings(max_examples=30, deadline=None)
    def test_split_reassembles_property(self, size, mss):
        payload = (b"\xaa\x55" * ((size + 1) // 2))[:size]
        seg = make_exact_segment(payload, mss=mss)
        packets = split_segment(seg, 12345)
        assert b"".join(p.payload for p in packets) == payload
        assert all(len(p.payload) == mss for p in packets[:-1])


class TestGso:
    def test_two_packet_split(self):
        # Paper §7: "We can use TSO for every pair of packets"; GSO cuts
        # larger sends into two-packet TSO segments with advancing offsets.
        seg = make_exact_segment(bytes(1440 * 6), mss=1440)
        subs = gso_split(seg, 2)
        assert len(subs) == 3
        assert [s.header.tso_offset for s in subs] == [0, 2880, 5760]
        assert all(s.num_packets == 2 for s in subs)

    def test_small_segment_unsplit(self):
        seg = make_exact_segment(bytes(1000))
        assert gso_split(seg, 2) == [seg]

    def test_payload_preserved(self):
        payload = bytes(range(256)) * 30
        seg = make_exact_segment(payload, mss=1440)
        subs = gso_split(seg, 2)
        assert b"".join(s.payload for s in subs) == payload

    def test_bad_split_size(self):
        with pytest.raises(ProtocolError):
            gso_split(make_exact_segment(bytes(100)), 0)
