"""NIC device tests: rings, doorbell ordering, TSO integration, IPIDs."""

import pytest

from repro.errors import SimulationError
from repro.net.headers import PROTO_SMT, TransportHeader
from repro.nic.tso import TsoSegment
from repro.testbed import Testbed


def make_segment(bed, payload, msg_id=2, tso_offset=0):
    header = TransportHeader(
        1000, 2000, msg_id, msg_len=len(payload), tso_offset=tso_offset
    )
    return TsoSegment(
        bed.client.addr, bed.server.addr, PROTO_SMT, header, payload,
        bed.client.nic.mtu_payload,
    )


def collect_packets(bed):
    received = []
    bed.link.attach("b", lambda p: received.append(p))
    return received


class TestTransmit:
    def test_segment_becomes_packets(self):
        bed = Testbed.back_to_back()
        received = collect_packets(bed)
        bed.client.nic.post(0, make_segment(bed, bytes(5000)))
        bed.run()
        assert len(received) == 4
        assert b"".join(p.payload for p in received) == bytes(5000)

    def test_within_ring_order_preserved(self):
        bed = Testbed.back_to_back()
        received = collect_packets(bed)
        for i in range(5):
            bed.client.nic.post(0, make_segment(bed, bytes([i]) * 100, msg_id=2 * i + 2))
        bed.run()
        assert [p.transport.msg_id for p in received] == [2, 4, 6, 8, 10]

    def test_round_robin_across_rings(self):
        bed = Testbed.back_to_back()
        received = collect_packets(bed)
        # Two items per ring posted before the engine runs: expect
        # interleaving (ring0, ring1, ring0, ring1), not batching.
        for i in range(2):
            bed.client.nic.post(0, make_segment(bed, b"a" * 10, msg_id=100 + i * 2))
            bed.client.nic.post(1, make_segment(bed, b"b" * 10, msg_id=200 + i * 2))
        bed.run()
        ids = [p.transport.msg_id for p in received]
        assert ids == [100, 200, 102, 202]

    def test_invalid_ring_rejected(self):
        bed = Testbed.back_to_back()
        with pytest.raises(SimulationError):
            bed.client.nic.post(99, make_segment(bed, b"x"))

    def test_ipids_increment_per_flow(self):
        bed = Testbed.back_to_back()
        received = collect_packets(bed)
        bed.client.nic.post(0, make_segment(bed, bytes(3000), msg_id=2))
        bed.client.nic.post(0, make_segment(bed, bytes(3000), msg_id=4, tso_offset=0))
        bed.run()
        ipids = [p.ip.ipid for p in received]
        assert ipids == list(range(len(ipids)))  # continuous across segments

    def test_stats_counters(self):
        bed = Testbed.back_to_back()
        collect_packets(bed)
        bed.client.nic.post(0, make_segment(bed, bytes(5000)))
        bed.run()
        assert bed.client.nic.segments_sent == 1
        assert bed.client.nic.packets_sent == 4


class TestReceive:
    def test_rx_handler_invoked_after_nic_latency(self):
        bed = Testbed.back_to_back()
        arrivals = []
        bed.server.nic.set_rx_handler(lambda p: arrivals.append(bed.loop.now))
        bed.client.nic.post(0, make_segment(bed, b"x" * 100))
        bed.run()
        assert len(arrivals) == 1
        # tx nic latency + wire + rx nic latency all elapsed.
        assert arrivals[0] > 2 * bed.client.nic.costs.nic_fixed_latency

    def test_no_handler_drops_silently(self):
        bed = Testbed.back_to_back()
        bed.server.nic.set_rx_handler(None)
        bed.client.nic.post(0, make_segment(bed, b"x"))
        bed.run()  # must not raise
