"""Autonomous TLS offload engine tests (paper §2.3, §3.2, Figure 2).

These tests exercise the exact hardware behaviours the paper's design is
built around: in-sequence records encrypt correctly, resync retargets the
expectation, and out-of-sequence records silently produce ciphertext the
receiver cannot authenticate.
"""

import pytest

from repro.crypto.aead import new_aead
from repro.errors import AuthenticationError, ProtocolError
from repro.nic.tls_offload import (
    FlowContextTable,
    RecordDescriptor,
    ResyncDescriptor,
    TlsOffloadDescriptor,
)
from repro.tls.constants import TAG_SIZE
from repro.tls.record import RecordProtection, encode_record_header

KEY = b"\x11" * 16
IV = b"\x22" * 12


def layout_record(plaintext):
    """Host-side placeholder: header + plaintext + type/tag space."""
    return (
        encode_record_header(len(plaintext) + 1 + TAG_SIZE)
        + plaintext
        + bytes(1 + TAG_SIZE)
    )


def make_table(key="ctx"):
    table = FlowContextTable()
    table.install(key, new_aead("aes-128-gcm", KEY), IV)
    return table


def opener():
    return RecordProtection(new_aead("aes-128-gcm", KEY), IV)


class TestInSequence:
    def test_single_record_encrypts_like_software(self):
        table = make_table()
        payload = layout_record(b"hello world")
        desc = TlsOffloadDescriptor("ctx", [RecordDescriptor(0, 11, seqno=0)])
        wire = table.encrypt_segment(payload, desc)
        sw = RecordProtection(new_aead("aes-128-gcm", KEY), IV).seal(b"hello world", seqno=0)
        assert wire == sw

    def test_receiver_can_open(self):
        table = make_table()
        payload = layout_record(b"data")
        desc = TlsOffloadDescriptor("ctx", [RecordDescriptor(0, 4, seqno=0)])
        wire = table.encrypt_segment(payload, desc)
        assert opener().open(wire, seqno=0).payload == b"data"

    def test_multiple_records_in_one_segment(self):
        table = make_table()
        r0, r1 = layout_record(b"first"), layout_record(b"second")
        desc = TlsOffloadDescriptor(
            "ctx",
            [
                RecordDescriptor(0, 5, seqno=0),
                RecordDescriptor(len(r0), 6, seqno=1),
            ],
        )
        wire = table.encrypt_segment(r0 + r1, desc)
        assert opener().open(wire[: len(r0)], seqno=0).payload == b"first"
        assert opener().open(wire[len(r0):], seqno=1).payload == b"second"

    def test_counter_self_increments_across_segments(self):
        # Figure 2 "In-seq.": S2 after S1 works with no resync.
        table = make_table()
        for seqno, text in enumerate([b"s1", b"s2", b"s3"]):
            payload = layout_record(text)
            desc = TlsOffloadDescriptor("ctx", [RecordDescriptor(0, len(text), seqno=seqno)])
            wire = table.encrypt_segment(payload, desc)
            assert opener().open(wire, seqno=seqno).payload == text
        assert table.context_stats("ctx")["out_of_sync_records"] == 0
        assert table.context_stats("ctx")["resyncs"] == 0


class TestOutOfSequence:
    def test_skipped_seqno_produces_unopenable_record(self):
        # Figure 2 "Out-seq.": S3 after S1 without resync -> corrupt.
        table = make_table()
        table.encrypt_segment(
            layout_record(b"s1"), TlsOffloadDescriptor("ctx", [RecordDescriptor(0, 2, 0)])
        )
        wire = table.encrypt_segment(
            layout_record(b"s3"), TlsOffloadDescriptor("ctx", [RecordDescriptor(0, 2, 2)])
        )
        # The engine used its expectation (1), not the host's intent (2).
        with pytest.raises(AuthenticationError):
            opener().open(wire, seqno=2)
        assert table.context_stats("ctx")["out_of_sync_records"] == 1

    def test_resync_fixes_skipped_seqno(self):
        # Figure 2 "Out-resync.": R3 before S3 retargets the expectation.
        table = make_table()
        table.encrypt_segment(
            layout_record(b"s1"), TlsOffloadDescriptor("ctx", [RecordDescriptor(0, 2, 0)])
        )
        table.apply_resync(ResyncDescriptor("ctx", 2))
        wire = table.encrypt_segment(
            layout_record(b"s3"), TlsOffloadDescriptor("ctx", [RecordDescriptor(0, 2, 2)])
        )
        assert opener().open(wire, seqno=2).payload == b"s3"
        assert table.context_stats("ctx")["resyncs"] == 1

    def test_retransmission_resync_reproduces_ciphertext(self):
        # TCP retransmit: re-encrypting the same record after resync must
        # give identical bytes (same key, same nonce).
        table = make_table()
        desc = TlsOffloadDescriptor("ctx", [RecordDescriptor(0, 8, seqno=5)])
        table.apply_resync(ResyncDescriptor("ctx", 5))
        first = table.encrypt_segment(layout_record(b"retrans!"), desc)
        table.apply_resync(ResyncDescriptor("ctx", 5))
        again = table.encrypt_segment(layout_record(b"retrans!"), desc)
        assert first == again

    def test_cross_queue_interleaving_corrupts_shared_context(self):
        # The §3.2 hazard: two (resync, segment) pairs from different rings
        # sharing one context interleave as R4, R5, S4, S5.
        table = make_table("shared")
        r4 = ResyncDescriptor("shared", 40)
        s4 = TlsOffloadDescriptor("shared", [RecordDescriptor(0, 2, 40)])
        r5 = ResyncDescriptor("shared", 50)
        s5 = TlsOffloadDescriptor("shared", [RecordDescriptor(0, 2, 50)])
        table.apply_resync(r4)
        table.apply_resync(r5)  # ring B's resync lands between ring A's pair
        wire4 = table.encrypt_segment(layout_record(b"m4"), s4)
        wire5 = table.encrypt_segment(layout_record(b"m5"), s5)
        # S4 was encrypted with expectation 50: unopenable at seqno 40.
        with pytest.raises(AuthenticationError):
            opener().open(wire4, seqno=40)
        # And S5 got expectation 51: also corrupt.
        with pytest.raises(AuthenticationError):
            opener().open(wire5, seqno=50)

    def test_separate_contexts_avoid_the_hazard(self):
        # SMT's fix (§4.4.2): one context per queue -- same interleaving,
        # no corruption.
        table = FlowContextTable()
        table.install(("q", 0), new_aead("aes-128-gcm", KEY), IV)
        table.install(("q", 1), new_aead("aes-128-gcm", KEY), IV)
        table.apply_resync(ResyncDescriptor(("q", 0), 40))
        table.apply_resync(ResyncDescriptor(("q", 1), 50))
        wire4 = table.encrypt_segment(
            layout_record(b"m4"), TlsOffloadDescriptor(("q", 0), [RecordDescriptor(0, 2, 40)])
        )
        wire5 = table.encrypt_segment(
            layout_record(b"m5"), TlsOffloadDescriptor(("q", 1), [RecordDescriptor(0, 2, 50)])
        )
        assert opener().open(wire4, seqno=40).payload == b"m4"
        assert opener().open(wire5, seqno=50).payload == b"m5"


class TestContextManagement:
    def test_unknown_context_rejected(self):
        table = FlowContextTable()
        with pytest.raises(ProtocolError):
            table.encrypt_segment(b"", TlsOffloadDescriptor("nope", []))
        with pytest.raises(ProtocolError):
            table.apply_resync(ResyncDescriptor("nope", 0))

    def test_capacity_evicts_lru(self):
        table = FlowContextTable(capacity=2)
        for name in ("a", "b", "c"):
            table.install(name, new_aead("aes-128-gcm", KEY), IV)
        assert not table.has_context("a")
        assert table.has_context("b") and table.has_context("c")
        assert table.evictions == 1

    def test_reinstall_resets_state(self):
        table = make_table()
        table.encrypt_segment(
            layout_record(b"xx"), TlsOffloadDescriptor("ctx", [RecordDescriptor(0, 2, 0)])
        )
        table.install("ctx", new_aead("aes-128-gcm", KEY), IV)
        assert table.context_stats("ctx")["expected_seqno"] is None

    def test_descriptor_exceeding_payload_rejected(self):
        table = make_table()
        desc = TlsOffloadDescriptor("ctx", [RecordDescriptor(0, 100, 0)])
        with pytest.raises(ProtocolError):
            table.encrypt_segment(layout_record(b"xx"), desc)

    def test_slice_for_gso(self):
        r0 = layout_record(b"abcd")
        desc = TlsOffloadDescriptor(
            "ctx",
            [RecordDescriptor(0, 4, 0), RecordDescriptor(len(r0), 4, 1)],
        )
        sub = desc.slice(len(r0), len(r0))
        assert len(sub.records) == 1
        assert sub.records[0].offset == 0 and sub.records[0].seqno == 1

    def test_slice_straddle_rejected(self):
        r0 = layout_record(b"abcd")
        desc = TlsOffloadDescriptor("ctx", [RecordDescriptor(0, 4, 0)])
        with pytest.raises(ProtocolError):
            desc.slice(5, len(r0))
