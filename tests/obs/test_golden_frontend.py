"""Golden trace for one deterministic front-end failover.

One fixed scenario -- two replicas behind one DNS name with a shared
long-term share, replica 1 crashing at 250 us and reviving at 700 us
(resynced 200 us later) while session opens flow through the balancer,
then a drain of replica 0 -- is locked down three ways:

- the ``lb``/``dns`` span log: every ``lb.open`` with its picked
  replica, the ``lb.fallback.1rtt`` spans inside the outage, the
  ``lb.replica.down`` span bracketing the health-gated membership gap,
  the final ``lb.drain``, and each ``dns.lookup`` the opens charged;
- the ``lb.*``/``dns.*`` metrics snapshot: opens, 0-RTT accepts,
  fallbacks, membership changes, health transitions, resolver counters;
- the registry membership log: register/down/up at exact virtual times.

Regenerate after an intentional change::

    PYTHONPATH=src python -m pytest tests/obs/test_golden_frontend.py --update-goldens
"""

import json
import random

from repro.core.zero_rtt import ZeroRttServer
from repro.crypto.ca import CertificateAuthority
from repro.crypto.cert import KEY_ALG_ECDSA
from repro.crypto.ecdsa import EcdsaKeyPair
from repro.ctrl import CtrlConfig, SharedShareRotator, TicketCache
from repro.dns.resolver import InternalDns
from repro.lb import (
    ConnectionDrainer,
    ConsistentHashBalancer,
    HealthChecker,
    ReplicaServer,
    ServiceFrontend,
    ServiceRegistry,
)
from repro.testbed import ClosTestbed
from repro.units import USEC

from tests.obs.test_golden_trace import check_golden

SERVICE = "svc.golden.internal"
PERIOD = 600 * USEC
TTL = 150 * USEC
LIFETIME = 400 * USEC
MARGIN = 200 * USEC
CRASH_AT = 250 * USEC
REVIVE_AT = 700 * USEC
RESYNC_DELAY = 200 * USEC
OPEN_STEP = 80 * USEC
HORIZON = 1250 * USEC


def render_lb_spans(obs) -> str:
    """The ``lb``/``dns`` span log, one line per span in begin order."""
    lines = []
    for s in obs.tracer.export():
        if s["layer"] not in ("lb", "dns"):
            continue
        dur = (
            "open" if s["end"] is None
            else f"{(s['end'] - s['start']) * 1e6:.3f}us"
        )
        attrs = " ".join(f"{k}={v}" for k, v in s["attrs"].items())
        lines.append(
            f"[{s['layer']}] {s['name']} @{s['start'] * 1e6:.3f}us {dur}"
            + (f" {attrs}" if attrs else "")
        )
    return "\n".join(lines)


def run_failover():
    """The canned failover; returns (obs, frontend, registry, checker)."""
    bed = ClosTestbed.leaf_spine(
        num_racks=2, hosts_per_rack=2, num_spines=2, seed=5
    )
    obs = bed.enable_obs()
    bed.enable_ctrl(config=CtrlConfig(), seed=2025)
    rng = random.Random(1)
    ca = CertificateAuthority("dc-root", rng)
    key = EcdsaKeyPair.generate(rng)
    chain = ca.chain_for(ca.issue(SERVICE, KEY_ALG_ECDSA, key.public_bytes()))
    roots = (ca.certificate,)
    dns = InternalDns(lookup_latency=2e-6)
    dns.bind_obs(obs)
    replica_indices = [2, 3]
    replica_hosts = [bed.hosts[i] for i in replica_indices]
    zservers = [
        ZeroRttServer(
            SERVICE, chain, key, random.Random(100 + i),
            lifetime=LIFETIME, grace_window=LIFETIME / 2,
        )
        for i in range(len(replica_hosts))
    ]
    replicas = {
        h.addr: ReplicaServer(h, z, plane=bed.ctrl_planes[idx])
        for h, z, idx in zip(replica_hosts, zservers, replica_indices)
    }
    controller = bed.domain_controller()
    rotator = SharedShareRotator(
        bed.loop, zservers, dns, SERVICE,
        rng=random.Random(9), period=PERIOD, ttl=TTL,
        up_fn=lambda i: controller.is_host_up(replica_hosts[i].addr),
    )
    rotator.start()
    registry = ServiceRegistry(bed.loop, dns, SERVICE)
    for h in replica_hosts:
        registry.register(h.addr)
    registry.start()
    registry.bind_obs(obs)
    checker = HealthChecker(
        bed.loop, registry, interval=20e-6, down_misses=2, up_successes=2
    )
    for h in replica_hosts:
        checker.watch(h.addr, lambda addr=h.addr: controller.is_host_up(addr))
    checker.start()
    checker.bind_obs(obs)
    cache = TicketCache(dns, roots, refresh_margin=MARGIN)
    fe = ServiceFrontend(
        bed.loop, registry, replicas, ConsistentHashBalancer(), cache, roots,
        minter_rid=replica_hosts[0].addr, seed=17,
    )
    fe.bind_obs(obs)
    drainer = ConnectionDrainer(bed.loop, fe)
    controller.on_replica_revive(
        lambda idx: bed.loop.timer_later(
            RESYNC_DELAY, rotator.resync,
            zservers[replica_indices.index(idx)],
        )
    )
    bed.loop.timer_later(CRASH_AT, controller.replica_crash, replica_indices[1])
    bed.loop.timer_later(REVIVE_AT, controller.replica_revive, replica_indices[1])

    def client():
        thread = bed.hosts[0].app_thread(0)
        k = 0
        yield bed.loop.timeout(10e-6)
        while bed.loop.now < HORIZON:
            yield from fe.open_session(thread, f"key-{k % 6}")
            k += 1
            yield bed.loop.timeout(OPEN_STEP)
        # Failover survived; drain the minter to close the scenario.
        yield from drainer.drain(replica_hosts[0].addr)

    done = bed.loop.process(client())
    bed.run(until=HORIZON + 300 * USEC)
    assert done.triggered and done.ok, getattr(done, "value", None)
    rotator.stop()
    registry.stop()
    checker.stop()
    controller.stop()
    return obs, fe, registry, checker


def lb_metrics(obs) -> dict:
    snap = obs.snapshot()["metrics"]
    return {
        k: v for k, v in sorted(snap.items())
        if k.startswith(("lb.", "dns."))
    }


class TestFrontendGoldens:
    def test_span_log(self, update_goldens):
        obs, _fe, _registry, _checker = run_failover()
        check_golden(
            "frontend_spans.txt", render_lb_spans(obs) + "\n", update_goldens
        )

    def test_metrics_snapshot(self, update_goldens):
        obs, _fe, _registry, _checker = run_failover()
        text = json.dumps(lb_metrics(obs), indent=1) + "\n"
        check_golden("frontend_metrics.json", text, update_goldens)

    def test_membership_log(self, update_goldens):
        _obs, _fe, registry, _checker = run_failover()
        check_golden(
            "frontend_membership.txt", registry.render_log() + "\n",
            update_goldens,
        )

    def test_failover_actually_exercised(self):
        """The goldens are only meaningful if the outage left its marks."""
        obs, fe, registry, checker = run_failover()
        spans = [s for s in obs.tracer.spans() if s.layer == "lb"]
        names = {s.name for s in spans}
        assert {"lb.open", "lb.fallback.1rtt", "lb.replica.down",
                "lb.drain"} <= names, names
        down = [s for s in spans if s.name == "lb.replica.down"]
        assert len(down) == 1 and down[0].end is not None
        assert down[0].end > down[0].start >= CRASH_AT
        assert checker.transitions == 2
        assert fe.counters.zero_rtt_accepts > 0
        assert fe.counters.fallbacks_1rtt > 0
        assert any(s.layer == "dns" for s in obs.tracer.spans())
