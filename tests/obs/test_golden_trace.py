"""Golden-trace tests: the observability layer's output, locked down.

Each scenario runs under a fixed seed and its full observability output --
the metrics/span snapshot, the rendered span tree, and the packet-capture
JSONL -- is compared byte-for-byte against checked-in golden files.  Any
change to instrumentation points, span layering, metric naming, capture
columns or the simulation's event order shows up as a readable diff here.

To regenerate after an intentional change::

    PYTHONPATH=src python -m pytest tests/obs/test_golden_trace.py --update-goldens
"""

import json
import pathlib
import runpy

from repro.net.faults import schedule_from_seed

from tests.fuzz.harness import (
    build_pair,
    fuzz_one_seed,
    random_payloads,
    run_exchange,
    start_echo_server,
)

REPO = pathlib.Path(__file__).resolve().parents[2]
GOLDENS = pathlib.Path(__file__).parent / "goldens"

# The adversarial scenario: one fixed fuzz seed whose schedule exercises
# drops, corruption, duplication and reordering (see the golden capture).
ADVERSARIAL_SEED = 1337


def check_golden(name: str, text: str, update: bool) -> None:
    """Compare ``text`` against the golden file, or rewrite it."""
    path = GOLDENS / name
    if update:
        GOLDENS.mkdir(exist_ok=True)
        path.write_text(text)
        return
    assert path.exists(), (
        f"missing golden {path.name}; run with --update-goldens to create it"
    )
    expected = path.read_text()
    assert text == expected, (
        f"observability output diverged from golden {path.name}; "
        f"if the change is intentional, rerun with --update-goldens"
    )


def quickstart_obs():
    mod = runpy.run_path(str(REPO / "examples" / "quickstart.py"))
    bed = mod["run_quickstart"](observe=True, verbose=False)
    return bed.obs


class TestQuickstartGoldens:
    def test_snapshot(self, update_goldens):
        obs = quickstart_obs()
        text = json.dumps(obs.snapshot(), indent=1) + "\n"
        check_golden("quickstart_snapshot.json", text, update_goldens)

    def test_span_tree(self, update_goldens):
        obs = quickstart_obs()
        check_golden("quickstart_spans.txt", obs.tracer.render() + "\n", update_goldens)

    def test_capture(self, update_goldens):
        obs = quickstart_obs()
        check_golden(
            "quickstart_capture.jsonl", obs.capture.export_jsonl() + "\n", update_goldens
        )


class TestAdversarialGoldens:
    def test_snapshot_and_capture(self, update_goldens):
        pair = fuzz_one_seed(ADVERSARIAL_SEED)
        obs = pair.bed.obs
        check_golden(
            "adversarial_snapshot.json",
            json.dumps(obs.snapshot(), indent=1) + "\n",
            update_goldens,
        )
        check_golden(
            "adversarial_capture.jsonl",
            obs.capture.export_jsonl() + "\n",
            update_goldens,
        )

    def test_fault_verdicts_reach_the_capture(self):
        """The adversarial golden is only meaningful if faults fired."""
        faults = schedule_from_seed(ADVERSARIAL_SEED)
        pair = build_pair(faults, fault_seed=ADVERSARIAL_SEED)
        start_echo_server(pair)
        run_exchange(pair, random_payloads(ADVERSARIAL_SEED, 6), seed=ADVERSARIAL_SEED)
        verdicts = {r.verdict for r in pair.bed.obs.capture.packets()}
        assert any(v != "delivered" for v in verdicts), verdicts
