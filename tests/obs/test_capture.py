"""Unit tests for the in-memory packet capture ring."""

import json

from repro.net.addressing import make_addr
from repro.net.headers import IPv4Header, PacketType, TransportHeader
from repro.net.packet import Packet
from repro.obs.capture import PacketCapture
from repro.sim.event_loop import EventLoop

SRC = make_addr(10, 0, 0, 1)
DST = make_addr(10, 0, 0, 2)


def make_packet(msg_id: int = 7, ipid: int = 3, trimmed: bool = False) -> Packet:
    pkt = Packet(
        IPv4Header(SRC, DST, 147, total_len=124, ipid=ipid),
        TransportHeader(
            src_port=10000, dst_port=7000, msg_id=msg_id,
            pkt_type=PacketType.DATA, msg_len=1440, priority=6,
        ),
        payload=b"\x00" * 64,
    )
    return pkt.with_meta(trimmed=True) if trimmed else pkt


class TestRecording:
    def test_record_copies_header_fields(self):
        loop = EventLoop()
        cap = PacketCapture(loop)
        rec = cap.record("c2s", make_packet(), "delivered+corrupt")
        assert rec.src == SRC and rec.dst == DST
        assert rec.pkt_type == "DATA"
        assert rec.msg_id == 7 and rec.payload_len == 64
        assert rec.verdict == "delivered+corrupt"
        assert rec.ts == loop.now

    def test_tap_callback_records_with_direction(self):
        cap = PacketCapture(EventLoop())
        tap = cap.tap("s2c")
        tap(make_packet(), "dropped")
        tap(make_packet())  # default verdict
        recs = cap.packets()
        assert [r.direction for r in recs] == ["s2c", "s2c"]
        assert [r.verdict for r in recs] == ["dropped", "delivered"]

    def test_ring_eviction_keeps_seq_numbers(self):
        cap = PacketCapture(EventLoop(), capacity=3)
        for i in range(5):
            cap.record("c2s", make_packet(msg_id=i))
        assert cap.seen == 5
        assert len(cap) == 3
        assert cap.evicted == 2
        assert [r.seq for r in cap.packets()] == [2, 3, 4]

    def test_last_n(self):
        cap = PacketCapture(EventLoop())
        for i in range(4):
            cap.record("c2s", make_packet(msg_id=i))
        assert [r.msg_id for r in cap.last(2)] == [2, 3]
        assert cap.last(0) == []


class TestExport:
    def test_jsonl_round_trips(self):
        cap = PacketCapture(EventLoop())
        cap.record("c2s", make_packet(), "delivered")
        cap.record("s2c", make_packet(trimmed=True), "delivered+reorder")
        lines = cap.export_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["dir"] == "c2s" and first["type"] == "DATA"
        assert json.loads(lines[1])["trimmed"] is True

    def test_text_format_is_tcpdump_like(self):
        cap = PacketCapture(EventLoop())
        cap.record("c2s", make_packet(), "delivered+dup")
        line = cap.export_text()
        assert "10.0.0.1:10000>10.0.0.2:7000" in line
        assert "DATA" in line and "[delivered+dup]" in line

    def test_tail_text_header_counts_evictions(self):
        cap = PacketCapture(EventLoop(), capacity=2)
        for i in range(5):
            cap.record("c2s", make_packet(msg_id=i))
        tail = cap.tail_text(10)
        assert tail.startswith("last 2 of 5 captured packets (3 evicted")

    def test_clear(self):
        cap = PacketCapture(EventLoop())
        cap.record("c2s", make_packet())
        cap.clear()
        assert len(cap) == 0
        assert cap.seen == 1  # totals survive a clear
