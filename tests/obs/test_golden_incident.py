"""Golden trace for a canned failure-domain incident.

One fixed scenario -- spine 0 dies at 80 us and revives at 220 us while
four cross-rack RPCs flow and a BFD-style watcher re-salts ECMP -- is
locked down three ways:

- the span tree: the ``incident``-layer span opened by the controller
  must nest the detection/reroute ordering against the RPC spans;
- the controller's event log: kill, watcher detection, re-salt,
  revival, re-join, each at its exact virtual-time stamp;
- the metrics snapshot: spine packet counters showing the migration.

Regenerate after an intentional change::

    PYTHONPATH=src python -m pytest tests/obs/test_golden_incident.py --update-goldens
"""

import json

from repro.load.cluster import ClusterHarness, build_request, verify_response
from repro.net.domain_faults import IncidentEvent
from repro.testbed import ClosTestbed
from repro.units import USEC

from tests.obs.test_golden_trace import check_golden

FAULT_AT = 80 * USEC
REVIVE_AT = 220 * USEC
RPC_TIMES_US = (10, 60, 120, 260)  # before, straddling, during, after


def run_incident():
    """The canned incident; returns (bed, controller, completions)."""
    bed = ClosTestbed.leaf_spine(
        num_racks=2, hosts_per_rack=1, num_spines=2, seed=1
    )
    obs = bed.enable_obs()
    harness = ClusterHarness(bed, "smt")
    controller = bed.domain_controller()
    controller.watch_spines(interval=20 * USEC, miss_threshold=2, resalt=True)
    controller.schedule([
        IncidentEvent(FAULT_AT, "spine_down", 0),
        IncidentEvent(REVIVE_AT, "spine_up", 0),
    ])

    loop = bed.loop
    completions = []

    def one(serial, at):
        yield loop.timeout(at)
        request = build_request(serial, 1024, 256)
        response = yield from harness.call(
            0, 1, harness.thread_for(0, serial), request
        )
        completions.append((serial, round(loop.now, 12),
                            verify_response(response, serial, 256)))

    for serial, at_us in enumerate(RPC_TIMES_US):
        loop.process(one(serial, at_us * USEC))
    loop.run(until=2e-3)
    controller.stop()
    return bed, controller, completions


class TestIncidentGoldens:
    def test_span_tree(self, update_goldens):
        bed, controller, completions = run_incident()
        assert len(completions) == len(RPC_TIMES_US)
        assert all(ok for _, _, ok in completions)
        check_golden(
            "incident_spans.txt", bed.obs.tracer.render() + "\n", update_goldens
        )

    def test_incident_log(self, update_goldens):
        bed, controller, _ = run_incident()
        check_golden(
            "incident_log.txt", controller.render_log() + "\n", update_goldens
        )

    def test_metrics_snapshot(self, update_goldens):
        bed, controller, _ = run_incident()
        text = json.dumps(bed.obs.snapshot()["metrics"], indent=1) + "\n"
        check_golden("incident_metrics.json", text, update_goldens)

    def test_incident_span_is_present_and_bounded(self):
        """The golden is only meaningful if the incident span fired."""
        bed, controller, _ = run_incident()
        spans = [s for s in bed.obs.tracer.spans() if s.layer == "incident"]
        assert len(spans) == 1
        span = spans[0]
        assert span.start == FAULT_AT
        assert span.end == REVIVE_AT
