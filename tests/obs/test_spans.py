"""Unit tests for the virtual-time span tracer."""

import pytest

from repro.obs.spans import SpanTracer
from repro.sim.event_loop import EventLoop


def advance(loop: EventLoop, dt: float) -> None:
    """Move the virtual clock forward by scheduling a no-op."""
    loop.call_later(dt, lambda: None)
    loop.run()


class TestSpanLifecycle:
    def test_begin_end_duration(self):
        loop = EventLoop()
        tracer = SpanTracer(loop)
        span = tracer.begin("homa.tx", "client.msg0", bytes=100)
        advance(loop, 5e-6)
        tracer.end(span, outcome="acked")
        assert span.duration == pytest.approx(5e-6)
        assert span.attrs == {"bytes": 100, "outcome": "acked"}

    def test_end_is_idempotent(self):
        loop = EventLoop()
        tracer = SpanTracer(loop)
        span = tracer.begin("l", "n")
        advance(loop, 1e-6)
        tracer.end(span)
        first_end = span.end
        advance(loop, 1e-6)
        tracer.end(span, late="ignored")
        assert span.end == first_end
        assert "late" not in span.attrs

    def test_open_span_has_no_duration(self):
        tracer = SpanTracer(EventLoop())
        assert tracer.begin("l", "n").duration is None

    def test_ids_are_sequential(self):
        tracer = SpanTracer(EventLoop())
        ids = [tracer.begin("l", f"s{i}").id for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]


class TestNesting:
    def test_context_manager_stack_parents(self):
        tracer = SpanTracer(EventLoop())
        with tracer.trace_span("a", "outer") as outer:
            with tracer.trace_span("b", "inner") as inner:
                pass
        assert inner.parent_id == outer.id
        assert outer.parent_id is None

    def test_explicit_parent_overrides_stack(self):
        tracer = SpanTracer(EventLoop())
        root = tracer.begin("a", "root")
        with tracer.trace_span("b", "cm"):
            child = tracer.begin("c", "child", parent=root)
        assert child.parent_id == root.id

    def test_begin_inside_context_manager_parents_to_it(self):
        tracer = SpanTracer(EventLoop())
        with tracer.trace_span("a", "outer") as outer:
            child = tracer.begin("b", "child")
        assert child.parent_id == outer.id

    def test_tree_nests_children(self):
        tracer = SpanTracer(EventLoop())
        with tracer.trace_span("a", "outer"):
            with tracer.trace_span("b", "inner"):
                pass
        roots = tracer.tree()
        assert len(roots) == 1
        assert roots[0]["name"] == "outer"
        assert [c["name"] for c in roots[0]["children"]] == ["inner"]

    def test_render_mentions_every_span(self):
        tracer = SpanTracer(EventLoop())
        with tracer.trace_span("a", "outer"):
            tracer.begin("b", "open-child")
        text = tracer.render()
        assert "outer" in text and "open-child" in text and "open" in text


class TestLayerSummary:
    def test_virtual_and_cpu_accounting(self):
        loop = EventLoop()
        tracer = SpanTracer(loop)
        span = tracer.begin("host.softirq", "s0")
        advance(loop, 2e-6)
        tracer.end(span, cpu=1.5e-6)
        with tracer.trace_span("smt.codec", "encode", cpu=3e-6):
            pass  # zero virtual duration, CPU attr only
        tracer.begin("homa.rx", "still-open")
        summary = tracer.layer_summary()
        assert summary["host.softirq"] == {
            "spans": 1, "open": 0,
            "virtual_s": pytest.approx(2e-6), "cpu_s": pytest.approx(1.5e-6),
        }
        assert summary["smt.codec"]["virtual_s"] == 0.0
        assert summary["smt.codec"]["cpu_s"] == pytest.approx(3e-6)
        assert summary["homa.rx"]["open"] == 1
        assert list(summary) == sorted(summary)

    def test_non_numeric_cpu_attr_ignored(self):
        tracer = SpanTracer(EventLoop())
        with tracer.trace_span("l", "n", cpu="not-a-number"):
            pass
        assert tracer.layer_summary()["l"]["cpu_s"] == 0.0


class TestExport:
    def test_export_is_json_stable(self):
        import json

        tracer = SpanTracer(EventLoop())
        with tracer.trace_span("l", "n", b=1, a=2):
            pass
        exported = tracer.export()
        assert json.dumps(exported)  # serialisable
        # Attrs are sorted so dict insertion order cannot leak through.
        assert list(exported[0]["attrs"]) == ["a", "b"]
