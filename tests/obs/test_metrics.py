"""Unit tests for the hierarchical metrics registry."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import Counter, CounterSet


class TestRegistration:
    def test_counter_created_on_first_use(self):
        reg = MetricsRegistry()
        reg.counter("client.homa.rx.packets").add(3)
        reg.counter("client.homa.rx.packets").add(2)
        assert reg.snapshot()["client.homa.rx.packets"] == 5

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(SimulationError):
            reg.histogram("x")

    def test_gauge_reads_live_state(self):
        reg = MetricsRegistry()
        state = {"depth": 0}
        reg.gauge("q.depth", lambda: state["depth"])
        state["depth"] = 7
        assert reg.snapshot()["q.depth"] == 7

    def test_gauge_rebind_allowed(self):
        reg = MetricsRegistry()
        reg.gauge("g", lambda: 1)
        reg.gauge("g", lambda: 2)  # a replaced session re-registers its gauges
        assert reg.snapshot()["g"] == 2

    def test_gauge_cannot_shadow_other_instrument(self):
        reg = MetricsRegistry()
        reg.counter("c")
        with pytest.raises(SimulationError):
            reg.gauge("c", lambda: 0)

    def test_attach_adopts_existing_instrument(self):
        reg = MetricsRegistry()
        counters = CounterSet(["dropped", "corrupted"], prefix="c2s.")
        reg.attach("faults.c2s", counters)
        reg.attach("faults.c2s", counters)  # same object: idempotent
        counters.dropped.add()
        assert reg.snapshot()["faults.c2s"] == {"dropped": 1, "corrupted": 0}
        with pytest.raises(SimulationError):
            reg.attach("faults.c2s", CounterSet(["dropped"], prefix="other."))

    def test_attach_rejects_non_instruments(self):
        reg = MetricsRegistry()
        with pytest.raises(SimulationError):
            reg.attach("x", object())


class TestSnapshot:
    def test_keys_sorted_and_json_serialisable(self):
        reg = MetricsRegistry()
        reg.counter("z.last")
        reg.counter("a.first")
        reg.histogram("m.hist").record(2.0)
        reg.rate_meter("m.meter")
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)

    def test_histogram_rendering(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.extend([1.0, 2.0, 3.0, 4.0])
        rendered = reg.snapshot()["h"]
        assert rendered["count"] == 4
        assert rendered["min"] == 1.0
        assert rendered["max"] == 4.0
        assert rendered["mean"] == pytest.approx(2.5)

    def test_rate_meter_rendering(self):
        reg = MetricsRegistry()
        m = reg.rate_meter("m")
        m.start(0.0)
        m.record(1000)
        m.stop(1.0)
        rendered = reg.snapshot()["m"]
        assert rendered["completions"] == 1
        assert rendered["bytes"] == 1000
        assert rendered["rate"] == pytest.approx(1.0)

    def test_names_lists_everything(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a", lambda: 0)
        assert reg.names() == ["a", "b"]
        assert "a" in reg and len(reg) == 2
        assert isinstance(reg.get("b"), Counter)
