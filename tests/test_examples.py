"""Smoke tests: the runnable examples keep working.

Only the fast examples run here (the benchmark-style ones are covered by
``benchmarks/``).  Each executes in-process with its printed output
captured; assertions inside the examples do the verifying.
"""

import runpy
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "plaintext visible on the wire: False" in out
        assert "OK:" in out

    def test_zero_rtt(self, capsys):
        out = run_example("zero_rtt.py", capsys)
        assert "0 network round trips" in out
        assert "OK:" in out

    def test_attack_demo(self, capsys):
        out = run_example("attack_demo.py", capsys)
        assert "replay attack" in out
        assert "OK:" in out

    def test_offload_anatomy(self, capsys):
        out = run_example("offload_anatomy.py", capsys)
        assert out.count("CORRUPTED") == 3  # Out-seq + the two shared-queue records
        assert out.count("decrypted OK") == 5

    def test_adversarial_network(self, capsys):
        out = run_example("adversarial_network.py", capsys)
        assert "messages delivered bit-exact: 100/100" in out
        assert "OK:" in out

    def test_incast_trimming(self, capsys):
        out = run_example("incast_trimming.py", capsys)
        assert "trimming ON" in out and "trimming OFF" in out

    def test_leaf_spine_load(self, capsys):
        out = run_example("leaf_spine_load.py", capsys)
        assert "integrity errors 0" in out
        assert "OK: loaded leaf-spine fabric" in out

    def test_incident_drill(self, capsys):
        out = run_example("incident_drill.py", capsys)
        assert "3 re-handshakes" in out
        assert "OK: incident drill survived" in out

    def test_replica_frontend(self, capsys):
        out = run_example("replica_frontend.py", capsys)
        assert "5/5 cross-replica accepted" in out
        assert "0/5 cross-replica accepted" in out
        assert "0 unhandled errors" in out
        assert "OK: replicated front end kept every open alive." in out

    def test_noisy_neighbor(self, capsys):
        out = run_example("noisy_neighbor.py", capsys)
        assert "isolation OFF" in out and "isolation ON" in out
        assert "better with isolation on" in out
        assert "OK: noisy neighbor contained" in out
