"""Property tests for ``Histogram.percentile`` and its sort cache.

Seeded ``random.Random`` loops stand in for a property-testing framework
(the container has no hypothesis): each property is checked over many
randomly drawn sample sets, and any failure message carries the case
index so the exact draw is reproducible.
"""

import random
import statistics

import pytest

from repro.sim.trace import Histogram


def random_samples(rng: random.Random) -> list[float]:
    n = rng.randrange(1, 200)
    scale = 10 ** rng.randrange(-6, 4)
    return [rng.random() * scale for _ in range(n)]


class TestPercentileProperties:
    def test_monotone_in_p(self):
        rng = random.Random(101)
        for case in range(50):
            h = Histogram()
            h.extend(random_samples(rng))
            ps = sorted(rng.uniform(0, 100) for _ in range(10))
            values = [h.percentile(p) for p in ps]
            assert values == sorted(values), f"case {case}: not monotone in p"

    def test_bounded_by_min_and_max(self):
        rng = random.Random(202)
        for case in range(50):
            samples = random_samples(rng)
            h = Histogram()
            h.extend(samples)
            for p in (0, rng.uniform(0, 100), 100):
                v = h.percentile(p)
                assert min(samples) <= v <= max(samples), f"case {case}: p={p}"
            assert h.percentile(0) == min(samples) == h.minimum()
            assert h.percentile(100) == max(samples) == h.maximum()

    def test_p50_of_symmetric_sample_is_median(self):
        rng = random.Random(303)
        for case in range(50):
            # A sample symmetric around ``centre``: mirrored pairs plus the
            # centre itself, so the median is exactly the centre.
            centre = rng.uniform(-100, 100)
            offsets = [rng.uniform(0, 50) for _ in range(rng.randrange(1, 40))]
            samples = [centre] + [centre - o for o in offsets] + [centre + o for o in offsets]
            rng.shuffle(samples)
            h = Histogram()
            h.extend(samples)
            assert h.percentile(50) == pytest.approx(centre), f"case {case}"
            assert h.percentile(50) == pytest.approx(statistics.median(samples))

    def test_agrees_with_statistics_quantiles(self):
        rng = random.Random(404)
        for case in range(25):
            samples = random_samples(rng)
            if len(samples) < 2:
                samples.append(rng.random())
            h = Histogram()
            h.extend(samples)
            # method="inclusive" is the same linear interpolation over
            # [min, max] that Histogram.percentile implements.
            cuts = statistics.quantiles(samples, n=100, method="inclusive")
            for p in range(1, 100):
                assert h.percentile(p) == pytest.approx(cuts[p - 1], rel=1e-12), (
                    f"case {case}: p={p}"
                )

    def test_rejects_out_of_range_p(self):
        h = Histogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(-0.1)
        with pytest.raises(ValueError):
            h.percentile(100.1)

    def test_empty_histogram_returns_zero(self):
        h = Histogram()
        assert h.percentile(50) == 0.0
        assert h.minimum() == 0.0 and h.maximum() == 0.0


class TestSortCache:
    def test_p50_and_p99_sort_once(self):
        """Regression: percentile() used to re-sort every call."""
        h = Histogram()
        h.extend(range(1000))
        assert h.sort_count == 0
        p50, p99 = h.p50(), h.p99()
        assert h.sort_count == 1
        assert (p50, p99) == (h.p50(), h.p99())  # still cached
        assert h.sort_count == 1

    def test_record_invalidates_cache(self):
        h = Histogram()
        h.extend([3.0, 1.0, 2.0])
        assert h.p50() == 2.0
        h.record(100.0)
        assert h.maximum() == 100.0  # new sample visible
        assert h.sort_count == 2

    def test_extend_invalidates_cache(self):
        h = Histogram()
        h.record(5.0)
        assert h.p50() == 5.0
        h.extend([1.0, 9.0])
        assert h.p50() == 5.0
        assert h.minimum() == 1.0 and h.maximum() == 9.0
        assert h.sort_count == 2

    def test_cache_does_not_change_results(self):
        rng = random.Random(505)
        samples = random_samples(rng)
        h = Histogram()
        h.extend(samples)
        first = [h.percentile(p) for p in (1, 25, 50, 75, 99)]
        again = [h.percentile(p) for p in (1, 25, 50, 75, 99)]
        assert first == again
        assert h.sort_count == 1
