"""Property suite for the hierarchical timer wheel in the event loop.

The wheel replaced a single ``heapq`` as the pending-entry store, with the
contract that dispatch order is *identical*: entries fire in exact
``(when, seq)`` order regardless of which slot, level, or overflow
structure parks them in between.  These tests pin that contract against a
minimal heap reference model -- the scheduler the wheel replaced -- across
randomized workloads that mix nested scheduling, cancellation, periodic
timers, ``call_soon`` merging, and delays spanning every wheel level.
"""

from __future__ import annotations

import heapq
import random

from repro.sim.event_loop import EventLoop

SEEDS = range(40)

# Delay palette spanning the wheel's regimes: same-slot, next-slot, every
# level of the hierarchy, and past the overflow horizon.
DELAYS = [0.0, 1e-7, 2.37e-7, 1e-6, 5e-5, 1e-3, 0.017, 0.5, 3.0, 700.0, 2e6]


class RefHeapLoop:
    """The old all-heap scheduler: exact (when, seq) order, tombstone cancel.

    ``call_soon`` is modelled as ``call_at(now)`` -- in a pure heap the
    two are indistinguishable, which is precisely the ordering contract
    the real loop's ready-deque fast path must preserve.
    """

    def __init__(self):
        self.now = 0.0
        self._q = []
        self._seq = 0

    def _push(self, when, fn, arg):
        self._seq += 1
        entry = [when, self._seq, fn, arg]
        heapq.heappush(self._q, entry)
        return entry

    def call_at(self, when, fn, arg=None):
        self._push(when, fn, arg)

    def call_later(self, delay, fn, arg=None):
        self._push(self.now + delay, fn, arg)

    def call_soon(self, fn, arg=None):
        self._push(self.now, fn, arg)

    def timer_later(self, delay, fn, arg=None):
        return self._push(self.now + delay, fn, arg)

    def every(self, interval, fn):
        state = {"cancelled": False}

        def fire(_arg):
            if state["cancelled"]:
                return
            fn()
            if not state["cancelled"]:
                self._push(self.now + interval, fire, None)

        self._push(self.now + interval, fire, None)
        return state

    @staticmethod
    def cancel(entry_or_state):
        if isinstance(entry_or_state, dict):
            entry_or_state["cancelled"] = True
        elif entry_or_state[2] is not None:
            entry_or_state[2] = None

    def run(self, until=None):
        while self._q:
            entry = self._q[0]
            if entry[2] is None:
                heapq.heappop(self._q)
                continue
            if until is not None and entry[0] > until:
                break
            heapq.heappop(self._q)
            fn = entry[2]
            entry[2] = None
            self.now = entry[0]
            fn(entry[3])
        if until is not None and until > self.now:
            self.now = until
        return self.now


class WheelAdapter:
    """Uniform facade over the real loop so scenarios run on either."""

    def __init__(self):
        self._loop = EventLoop()
        self.call_at = self._loop.call_at
        self.call_later = self._loop.call_later
        self.call_soon = self._loop.call_soon
        self.timer_later = self._loop.timer_later
        self.every = lambda interval, fn: self._loop.every(interval, fn)
        self.run = self._loop.run

    @property
    def now(self):
        return self._loop.now

    @staticmethod
    def cancel(handle):
        handle.cancel()


def _scenario(seed, loop):
    """Deterministic random workload; returns the observed firing order."""
    rng = random.Random(seed)
    order = []
    live = {}
    counter = [0]

    def fire(tag):
        order.append((round(loop.now, 12), tag))
        for _ in range(rng.randrange(3)):
            counter[0] += 1
            tag2 = counter[0]
            delay = rng.choice(DELAYS)
            roll = rng.random()
            if roll < 0.5:
                live[tag2] = loop.timer_later(delay, fire, tag2)
            elif roll < 0.8:
                loop.call_later(delay, fire, tag2)
            else:
                loop.call_soon(fire, tag2)
        if rng.random() < 0.4 and live:
            key = rng.choice(sorted(live))
            loop.cancel(live.pop(key))

    for _ in range(40):
        counter[0] += 1
        delay = rng.choice(DELAYS) * rng.random()
        if rng.random() < 0.5:
            live[counter[0]] = loop.timer_later(delay, fire, counter[0])
        else:
            loop.call_later(delay, fire, counter[0])
    return order


def test_firing_order_matches_heap_reference():
    """40 randomized seeds: full dispatch order equals the heap model's."""
    for seed in SEEDS:
        wheel = WheelAdapter()
        ref = RefHeapLoop()
        w_order = _scenario(seed, wheel)
        r_order = _scenario(seed, ref)
        wheel.run()
        ref.run()
        assert w_order == r_order, f"seed {seed} diverged"
        assert wheel.now == ref.now, f"seed {seed}: final clocks differ"


def test_windowed_runs_match_heap_reference():
    """run(until=...) windows advance both models identically."""
    for seed in range(20):
        wheel = WheelAdapter()
        ref = RefHeapLoop()
        w_order = _scenario(seed, wheel)
        r_order = _scenario(seed, ref)
        rng = random.Random(10_000 + seed)
        horizon = 0.0
        for _ in range(30):
            horizon += rng.choice(DELAYS) * rng.random()
            assert wheel.run(until=horizon) == ref.run(until=horizon)
        wheel.run()
        ref.run()
        assert w_order == r_order, f"seed {seed} diverged under windowed runs"


def test_periodic_timer_matches_heap_reference():
    """PeriodicTimer fire times and cancellation parity vs the reference."""
    for seed in range(30):
        rng = random.Random(seed)
        interval = rng.choice([1e-5, 3.3e-4, 0.01, 0.25])
        cancel_after = rng.randrange(1, 12)
        for loop in (WheelAdapter(), RefHeapLoop()):
            fired = []

            def tick(fired=fired, loop=loop):
                fired.append(round(loop.now, 12))
                if len(fired) == cancel_after:
                    loop.cancel(handle)

            handle = loop.every(interval, tick)
            loop.run(until=10.0)
            expected = [round(interval * (i + 1), 12) for i in range(cancel_after)]
            assert fired == expected, f"seed {seed}: periodic fired at {fired}"


def test_cancellation_is_idempotent_and_accounted():
    loop = EventLoop()
    fired = []
    timers = [loop.timer_later(d, fired.append, d) for d in DELAYS]
    assert loop.pending_events() == len(DELAYS)
    victim = timers[3]
    assert victim.cancel() is True
    assert victim.cancel() is False  # second cancel is a no-op
    assert not victim.active
    assert loop.pending_events() == len(DELAYS) - 1
    loop.run()
    assert sorted(fired) == sorted(d for i, d in enumerate(DELAYS) if i != 3)
    assert loop.pending_events() == 0


def test_mass_cancellation_compacts_without_reordering():
    """Cancelling most of a large population (triggering compaction) must
    not disturb the survivors' firing order."""
    for seed in range(10):
        rng = random.Random(seed)
        loop = EventLoop()
        fired = []
        timers = []
        for i in range(500):
            delay = rng.choice(DELAYS) * (1.0 + rng.random())
            timers.append((loop.timer_later(delay, fired.append, i), delay, i))
        rng.shuffle(timers)
        keep = timers[:50]
        for timer, _, _ in timers[50:]:
            timer.cancel()
        assert loop.pending_events() == 50
        loop.run()
        expected = [i for _, _, i in sorted(
            keep, key=lambda t: (t[0].when, t[2])
        )]
        # Survivors with equal `when` keep insertion order, which the sort
        # key above reproduces because lower index implies lower seq.
        assert fired == expected, f"seed {seed}: survivor order changed"
