"""Differential tests for the sharded conservative-PDES kernel.

The central claim of :mod:`repro.sim.shard` is that the partitioning is
unobservable: a loaded cluster run under 1, 2 and 4 time domains (and on
either carrier) produces bit-identical delivery order, books, slowdown
statistics and event totals.  These tests run the claim directly over
seeded workloads; on a mismatch they print a ``REPRODUCING SEED`` line
naming the exact seed so the failure replays from one number.
"""

import pytest

from repro.errors import SimulationError
from repro.load.distributions import HOMA_W4
from repro.load.shard import (
    measure_baselines,
    merge_load_results,
    merged_requests_served,
)
from repro.net.headers import IPv4Header, TransportHeader
from repro.net.packet import Packet
from repro.sim.event_loop import EventLoop
from repro.sim.shard import ShardPlan, ShardRunner
from repro.sim.shard.boundary import (
    OutboundQueue,
    decode_batch,
    encode_message,
    merge_batches,
)

WORKLOAD = "repro.load.shard:build_domain_workload"


def _loaded_signature(plan, domains, system, seed, baselines, duration=4e-5,
                      use_processes=False):
    """Everything observable about one sharded loaded run, as one tuple."""
    args = {
        "system": system,
        "distribution": HOMA_W4,
        "load": 0.5,
        "duration": duration,
        "seed": seed,
        "baselines": baselines,
    }
    run = ShardRunner(
        plan.with_domains(domains),
        workload_factory=WORKLOAD,
        workload_args=args,
        use_processes=use_processes,
    ).run()
    merged = merge_load_results(
        system, 0.5, duration, run.workloads(), baselines, run.spine_spread()
    )
    completions = sorted(
        (record for payload in run.workloads()
         for record in payload["completions"]),
        key=lambda r: (r[0], r[1], r[2]),
    )
    return {
        "events": run.events,
        "windows": run.windows,
        "final_barrier": run.final_barrier,
        "issued": merged.issued,
        "completed": merged.completed,
        "failed": merged.failed,
        "integrity_errors": merged.integrity_errors,
        "achieved_bytes": merged.achieved_bytes,
        "p50": merged.p50,
        "p99": merged.p99,
        "mean": merged.mean,
        "spine_spread": tuple(run.spine_spread()),
        "fabric_stats": str(run.fabric_stats()),
        "served": tuple(sorted(merged_requests_served(run.workloads()).items())),
        # The merged completion stream IS the delivery order: completion
        # virtual times, sources, serials, sizes and slowdowns, in
        # canonical order.
        "completions": tuple(completions),
    }


class TestDifferentialDomains:
    """1 vs 2 vs 4 domains must be bit-identical, several seeds deep."""

    @pytest.mark.parametrize("system", ["smt", "tcp"])
    def test_domain_count_is_unobservable(self, system):
        plan = ShardPlan(num_racks=4, hosts_per_rack=2, num_spines=2)
        baselines = measure_baselines(plan, system, HOMA_W4)
        for seed in (3, 11):
            reference = _loaded_signature(plan, 1, system, seed, baselines)
            for domains in (2, 4):
                candidate = _loaded_signature(
                    plan, domains, system, seed, baselines
                )
                for key, expected in reference.items():
                    if candidate[key] != expected:
                        print(
                            f"REPRODUCING SEED: seed={seed} system={system} "
                            f"domains={domains} field={key}"
                        )
                    assert candidate[key] == expected, (
                        f"{key} diverged at {domains} domains (seed {seed})"
                    )

    def test_rerun_is_bit_identical(self):
        plan = ShardPlan(num_racks=2, hosts_per_rack=2, num_spines=2)
        baselines = measure_baselines(plan, "smt", HOMA_W4)
        first = _loaded_signature(plan, 2, "smt", 7, baselines)
        second = _loaded_signature(plan, 2, "smt", 7, baselines)
        if first != second:
            print("REPRODUCING SEED: seed=7 system=smt domains=2 (rerun)")
        assert first == second

    def test_multiprocessing_carrier_matches_in_process(self):
        plan = ShardPlan(num_racks=2, hosts_per_rack=2, num_spines=2)
        baselines = measure_baselines(plan, "smt", HOMA_W4)
        inproc = _loaded_signature(plan, 2, "smt", 5, baselines)
        piped = _loaded_signature(
            plan, 2, "smt", 5, baselines, use_processes=True
        )
        if inproc != piped:
            print("REPRODUCING SEED: seed=5 system=smt domains=2 (mp carrier)")
        assert inproc == piped

    def test_traffic_actually_crosses_domains(self):
        """The parity above must not be vacuous: cross-rack RPCs exist."""
        plan = ShardPlan(num_racks=2, hosts_per_rack=2, num_spines=2)
        baselines = measure_baselines(plan, "smt", HOMA_W4)
        sig = _loaded_signature(plan, 2, "smt", 11, baselines)
        assert sum(sig["spine_spread"]) > 0
        assert any(record[4] for record in sig["completions"])  # cross flag


class TestShardPlan:
    def test_contiguous_rack_blocks(self):
        plan = ShardPlan(num_racks=4, hosts_per_rack=2, domains=2)
        assert plan.racks_of_domain(0) == [0, 1]
        assert plan.racks_of_domain(1) == [2, 3]
        assert [plan.domain_of_rack(r) for r in range(4)] == [0, 0, 1, 1]

    def test_every_domain_owns_a_rack(self):
        plan = ShardPlan(num_racks=3, hosts_per_rack=1, domains=3)
        assert [plan.racks_of_domain(d) for d in range(3)] == [[0], [1], [2]]

    def test_domains_bounded_by_racks(self):
        with pytest.raises(SimulationError):
            ShardPlan(num_racks=2, domains=3)
        with pytest.raises(SimulationError):
            ShardPlan(num_racks=2, domains=0)

    def test_with_domains_repartitions(self):
        plan = ShardPlan(num_racks=4, domains=1)
        again = plan.with_domains(4)
        assert again.domains == 4
        assert [again.domain_of_rack(r) for r in range(4)] == [0, 1, 2, 3]
        assert plan.domains == 1  # original untouched

    def test_global_index_round_trip(self):
        plan = ShardPlan(num_racks=3, hosts_per_rack=4, domains=3)
        for rack in range(3):
            for slot in range(4):
                g = plan.global_index(rack, slot)
                assert plan.rack_of_index(g) == rack
                assert plan.domain_of_index(g) == plan.domain_of_rack(rack)


class TestBoundaryCodec:
    def _packet(self, **meta):
        payload = b"hello boundary"
        pkt = Packet(
            IPv4Header(0x0A010001, 0x0A020001, 17, 0),
            TransportHeader(7, 9, 42),
            payload,
        )
        pkt.meta.update(meta)
        return pkt

    def test_round_trip_preserves_wire_and_times(self):
        blob = encode_message(1, self._packet(), 2.5e-6, 3.0e-6)
        [(arrival, departure, seq, spine, pkt)] = decode_batch(blob)
        assert (arrival, departure, seq, spine) == (3.0e-6, 2.5e-6, 0, 1)
        assert pkt.payload == b"hello boundary"
        assert pkt.ip.src_addr == 0x0A010001
        assert pkt.ip.dst_addr == 0x0A020001

    def test_round_trip_preserves_receiver_visible_meta(self):
        cases = [
            ({}, {}),
            ({"trimmed": True}, {"trimmed": True}),
            ({"segment_end": False}, {"segment_end": False}),
            ({"segment_end": True}, {"segment_end": True}),
        ]
        for meta_in, meta_out in cases:
            blob = encode_message(0, self._packet(**meta_in), 1.0, 2.0)
            [(_, _, _, _, pkt)] = decode_batch(blob)
            for key, value in meta_out.items():
                assert pkt.meta.get(key) == value
            if "segment_end" not in meta_in:
                assert "segment_end" not in pkt.meta

    def test_merge_batches_orders_by_arrival_then_source(self):
        q0, q1 = OutboundQueue(), OutboundQueue()
        q0.emit(0, 0, self._packet(), 0.5, 2.0)
        q0.emit(0, 1, self._packet(), 0.1, 1.0)
        q1.emit(0, 0, self._packet(), 0.2, 1.0)
        (blob0, min0) = q0.drain()[0]
        (blob1, min1) = q1.drain()[0]
        assert (min0, min1) == (1.0, 1.0)
        merged = merge_batches([(1, blob1), (0, blob0)])
        arrivals = [arrival for arrival, _, _ in merged]
        assert arrivals == [1.0, 1.0, 2.0]
        # Tie at arrival 1.0 breaks by departure time: q0's message left
        # at 0.1, q1's at 0.2, matching shared-loop scheduling order.
        assert merged[0][1] == 1  # spine of q0's arrival-1.0 message
        assert merged[1][1] == 0  # then q1's


class TestNextEventTime:
    def test_empty_loop_has_none(self):
        assert EventLoop().next_event_time() is None

    def test_reports_earliest_pending(self):
        loop = EventLoop()
        loop.call_later(2.0, lambda: None)
        loop.call_later(0.5, lambda: None)
        assert loop.next_event_time() == 0.5

    def test_skips_cancelled_head(self):
        loop = EventLoop()
        handle = loop.timer_later(0.5, lambda: None)
        loop.call_later(2.0, lambda: None)
        handle.cancel()
        assert loop.next_event_time() == 2.0

    def test_peek_does_not_advance(self):
        loop = EventLoop()
        seen = []
        loop.call_later(1.0, lambda: seen.append(True))
        assert loop.next_event_time() == 1.0
        assert seen == [] and loop.now == 0.0
        loop.run()
        assert seen == [True]


class TestRunnerProtocol:
    def test_workloadless_run_terminates(self):
        # No workload: only construction-time events (host/NIC setup)
        # exist, so the barrier loop drains them and stops on its own.
        plan = ShardPlan(num_racks=2, hosts_per_rack=1, domains=2)
        result = ShardRunner(plan).run()
        assert result.hosts == 2
        assert result.final_barrier < 1e-3
        assert sum(result.spine_spread()) == 0

    def test_deadline_bounds_virtual_time(self):
        plan = ShardPlan(num_racks=2, hosts_per_rack=2, domains=2)
        baselines = measure_baselines(plan, "smt", HOMA_W4)
        args = {
            "system": "smt", "distribution": HOMA_W4, "load": 0.5,
            "duration": 1.0, "seed": 1, "baselines": baselines,
        }
        run = ShardRunner(
            plan, workload_factory=WORKLOAD, workload_args=args,
            deadline=2e-5,
        ).run()
        assert run.final_barrier <= 2e-5 + plan.lookahead
        for domain in run.domains:
            assert domain.final_now <= 2e-5 + plan.lookahead

    def test_domain_results_cover_all_racks(self):
        plan = ShardPlan(num_racks=4, hosts_per_rack=1, domains=4)
        result = ShardRunner(plan).run()
        assert sorted(r for d in result.domains for r in d.racks) == [0, 1, 2, 3]
