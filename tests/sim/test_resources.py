"""Tests for FIFO resources and stores."""

import pytest

from repro.errors import SimulationError
from repro.sim.event_loop import EventLoop
from repro.sim.resources import Resource, Store


class TestResource:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            Resource(EventLoop(), capacity=0)

    def test_immediate_acquire_when_free(self):
        loop = EventLoop()
        res = Resource(loop)
        ev = res.acquire()
        loop.run()
        assert ev.triggered
        assert res.in_use == 1

    def test_release_without_acquire_rejected(self):
        with pytest.raises(SimulationError):
            Resource(EventLoop()).release()

    def test_fifo_wakeup_order(self):
        loop = EventLoop()
        res = Resource(loop)
        order = []

        def worker(name, hold):
            yield from res.service(hold)
            order.append(name)

        for name in ("a", "b", "c"):
            loop.process(worker(name, 1.0))
        loop.run()
        assert order == ["a", "b", "c"]
        assert loop.now == pytest.approx(3.0)

    def test_service_serialises_on_capacity_one(self):
        loop = EventLoop()
        res = Resource(loop)

        def worker():
            yield from res.service(2.0)

        loop.process(worker())
        loop.process(worker())
        loop.run()
        assert loop.now == pytest.approx(4.0)

    def test_capacity_two_runs_in_parallel(self):
        loop = EventLoop()
        res = Resource(loop, capacity=2)

        def worker():
            yield from res.service(2.0)

        for _ in range(4):
            loop.process(worker())
        loop.run()
        assert loop.now == pytest.approx(4.0)

    def test_busy_time_accumulates(self):
        loop = EventLoop()
        res = Resource(loop)

        def worker():
            yield from res.service(1.5)

        loop.process(worker())
        loop.process(worker())
        loop.run()
        assert res.busy_time == pytest.approx(3.0)
        assert res.utilization(elapsed=3.0) == pytest.approx(1.0)

    def test_utilization_with_idle_time(self):
        loop = EventLoop()
        res = Resource(loop)

        def worker():
            yield from res.service(1.0)

        loop.process(worker())
        loop.run()
        assert res.utilization(elapsed=4.0) == pytest.approx(0.25)

    def test_queue_length_reporting(self):
        loop = EventLoop()
        res = Resource(loop)
        res.acquire()
        res.acquire()
        res.acquire()
        loop.run()
        assert res.in_use == 1
        assert res.queue_length == 2


class TestStore:
    def test_put_then_get(self):
        loop = EventLoop()
        store = Store(loop)
        store.put("item")
        ev = store.get()
        loop.run()
        assert ev.value == "item"

    def test_get_blocks_until_put(self):
        loop = EventLoop()
        store = Store(loop)
        got = []

        def consumer():
            value = yield store.get()
            got.append((loop.now, value))

        loop.process(consumer())
        loop.call_later(2.0, lambda: store.put("late"))
        loop.run()
        assert got == [(2.0, "late")]

    def test_fifo_ordering(self):
        loop = EventLoop()
        store = Store(loop)
        for i in range(5):
            store.put(i)
        out = []

        def consumer():
            for _ in range(5):
                out.append((yield store.get()))

        loop.process(consumer())
        loop.run()
        assert out == [0, 1, 2, 3, 4]

    def test_multiple_getters_fifo(self):
        loop = EventLoop()
        store = Store(loop)
        order = []

        def consumer(name):
            yield store.get()
            order.append(name)

        loop.process(consumer("first"))
        loop.process(consumer("second"))
        loop.call_later(1.0, lambda: (store.put(1), store.put(2)))
        loop.run()
        assert order == ["first", "second"]

    def test_try_get(self):
        loop = EventLoop()
        store = Store(loop)
        assert store.try_get() is None
        store.put("x")
        assert store.try_get() == "x"
        assert store.try_get() is None

    def test_len_and_peek(self):
        loop = EventLoop()
        store = Store(loop)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.peek_all() == [1, 2]
        assert len(store) == 2  # peek does not consume
