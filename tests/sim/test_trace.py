"""Tests for measurement helpers."""

import pytest

from repro.sim.trace import Counter, Histogram, RateMeter


class TestHistogram:
    def test_empty_histogram(self):
        h = Histogram()
        assert h.mean() == 0.0
        assert h.p50() == 0.0
        assert h.count == 0

    def test_mean(self):
        h = Histogram()
        h.extend([1.0, 2.0, 3.0])
        assert h.mean() == pytest.approx(2.0)

    def test_median_odd(self):
        h = Histogram()
        h.extend([5.0, 1.0, 3.0])
        assert h.p50() == pytest.approx(3.0)

    def test_median_even_interpolates(self):
        h = Histogram()
        h.extend([1.0, 2.0, 3.0, 4.0])
        assert h.p50() == pytest.approx(2.5)

    def test_p99_on_uniform_samples(self):
        h = Histogram()
        h.extend(float(i) for i in range(101))  # 0..100
        assert h.percentile(99) == pytest.approx(99.0)
        assert h.percentile(0) == 0.0
        assert h.percentile(100) == 100.0

    def test_percentile_out_of_range(self):
        h = Histogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_single_sample(self):
        h = Histogram()
        h.record(7.0)
        assert h.p50() == 7.0
        assert h.p99() == 7.0
        assert h.stddev() == 0.0

    def test_stddev(self):
        h = Histogram()
        h.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert h.stddev() == pytest.approx(2.138, abs=1e-3)

    def test_insertion_order_does_not_matter(self):
        a, b = Histogram(), Histogram()
        a.extend([3.0, 1.0, 2.0])
        b.extend([1.0, 2.0, 3.0])
        assert a.percentile(75) == b.percentile(75)


class TestRateMeter:
    def test_records_before_start_ignored(self):
        m = RateMeter()
        m.record(100)
        m.start(now=1.0)
        m.record(100)
        m.stop(now=2.0)
        assert m.completions == 1
        assert m.rate() == pytest.approx(1.0)

    def test_rate_and_goodput(self):
        m = RateMeter()
        m.start(now=0.0)
        for _ in range(10):
            m.record(1000)
        m.stop(now=2.0)
        assert m.rate() == pytest.approx(5.0)
        assert m.goodput_bps() == pytest.approx(10 * 1000 * 8 / 2.0)

    def test_zero_window(self):
        m = RateMeter()
        m.start(0.0)
        m.stop(0.0)
        assert m.rate() == 0.0


class TestCounter:
    def test_add(self):
        c = Counter("x")
        c.add()
        c.add(5)
        assert c.value == 6
