"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.event_loop import EventLoop, Interrupt


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert EventLoop().now == 0.0

    def test_call_later_advances_clock(self):
        loop = EventLoop()
        seen = []
        loop.call_later(1.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [1.5]
        assert loop.now == 1.5

    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.call_later(2.0, lambda: order.append("b"))
        loop.call_later(1.0, lambda: order.append("a"))
        loop.call_later(3.0, lambda: order.append("c"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        loop = EventLoop()
        order = []
        for tag in "abc":
            loop.call_later(1.0, lambda t=tag: order.append(t))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.call_later(1.0, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventLoop().call_later(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        loop = EventLoop()
        seen = []
        loop.call_later(1.0, lambda: seen.append(1))
        loop.call_later(5.0, lambda: seen.append(5))
        loop.run(until=2.0)
        assert seen == [1]
        assert loop.now == 2.0
        loop.run()
        assert seen == [1, 5]

    def test_run_returns_final_time(self):
        loop = EventLoop()
        loop.call_later(4.0, lambda: None)
        assert loop.run() == 4.0

    def test_max_events_guard(self):
        loop = EventLoop()

        def rearm():
            loop.call_soon(rearm)

        loop.call_soon(rearm)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)


class TestEvents:
    def test_succeed_delivers_value(self):
        loop = EventLoop()
        ev = loop.event()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed(42)
        loop.run()
        assert got == [42]

    def test_callback_after_trigger_still_runs(self):
        loop = EventLoop()
        ev = loop.event().succeed("x")
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        loop.run()
        assert got == ["x"]

    def test_double_trigger_rejected(self):
        loop = EventLoop()
        ev = loop.event().succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_ok_requires_trigger(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            _ = loop.event().ok

    def test_fail_requires_exception(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.event().fail("not an exception")

    def test_timeout_value(self):
        loop = EventLoop()
        ev = loop.timeout(2.0, value="done")
        loop.run()
        assert ev.triggered and ev.ok and ev.value == "done"

    def test_all_of_collects_values(self):
        loop = EventLoop()
        events = [loop.timeout(i, value=i) for i in (3.0, 1.0, 2.0)]
        combined = loop.all_of(events)
        loop.run()
        assert combined.value == [3.0, 1.0, 2.0]

    def test_all_of_empty(self):
        loop = EventLoop()
        combined = loop.all_of([])
        loop.run()
        assert combined.triggered and combined.value == []

    def test_all_of_fails_fast(self):
        loop = EventLoop()
        good = loop.timeout(5.0)
        bad = loop.event()
        combined = loop.all_of([good, bad])
        loop.call_later(1.0, lambda: bad.fail(ValueError("boom")))
        loop.run()
        assert combined.triggered and not combined.ok
        assert isinstance(combined.value, ValueError)


class TestProcesses:
    def test_process_returns_value(self):
        loop = EventLoop()

        def body():
            yield loop.timeout(1.0)
            return "result"

        assert loop.run_process(body()) == "result"
        assert loop.now == 1.0

    def test_process_receives_event_value(self):
        loop = EventLoop()

        def body():
            value = yield loop.timeout(1.0, value=99)
            return value

        assert loop.run_process(body()) == 99

    def test_process_exception_propagates(self):
        loop = EventLoop()

        def body():
            yield loop.timeout(1.0)
            raise RuntimeError("inner")

        with pytest.raises(RuntimeError, match="inner"):
            loop.run_process(body())

    def test_failed_event_raises_in_process(self):
        loop = EventLoop()
        ev = loop.event()
        loop.call_later(1.0, lambda: ev.fail(KeyError("k")))

        def body():
            with pytest.raises(KeyError):
                yield ev
            return "handled"

        assert loop.run_process(body()) == "handled"

    def test_processes_compose(self):
        loop = EventLoop()

        def inner():
            yield loop.timeout(2.0)
            return 7

        def outer():
            value = yield loop.process(inner())
            return value * 2

        assert loop.run_process(outer()) == 14

    def test_yield_non_event_rejected(self):
        loop = EventLoop()

        def body():
            yield 42

        loop.process(body())
        with pytest.raises(SimulationError):
            loop.run()

    def test_interrupt_raises_in_process(self):
        loop = EventLoop()
        caught = []

        def body():
            try:
                yield loop.timeout(10.0)
            except Interrupt as exc:
                caught.append((loop.now, exc.cause))
            return "done"

        proc = loop.process(body())
        loop.call_later(1.0, lambda: proc.interrupt("reason"))
        loop.run()
        assert caught == [(1.0, "reason")]  # resumed at interrupt time
        assert proc.value == "done"

    def test_unhandled_interrupt_ends_process_cleanly(self):
        loop = EventLoop()

        def body():
            yield loop.timeout(10.0)

        proc = loop.process(body())
        loop.call_later(1.0, lambda: proc.interrupt())
        loop.run()
        assert proc.triggered and proc.ok

    def test_deadlock_detected_by_run_process(self):
        loop = EventLoop()

        def body():
            yield loop.event()  # never triggers

        with pytest.raises(SimulationError, match="did not complete"):
            loop.run_process(body())


class TestTimers:
    def test_cancel_before_fire_suppresses_callback(self):
        loop = EventLoop()
        fired = []
        timer = loop.timer_later(1.0, lambda: fired.append("t"))
        assert timer.active
        assert timer.cancel() is True
        assert not timer.active
        loop.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        loop = EventLoop()
        fired = []
        timer = loop.timer_later(1.0, lambda: fired.append("t"))
        loop.run()
        assert fired == ["t"]
        assert not timer.active
        assert timer.cancel() is False  # already fired: nothing to cancel

    def test_double_cancel_idempotent(self):
        loop = EventLoop()
        timer = loop.timer_later(1.0, lambda: None)
        assert timer.cancel() is True
        assert timer.cancel() is False
        loop.run()
        assert loop.pending_events() == 0

    def test_timer_at_passes_arg_and_when(self):
        loop = EventLoop()
        got = []
        timer = loop.timer_at(2.5, got.append, "payload")
        assert timer.when == 2.5
        loop.run()
        assert got == ["payload"]
        assert loop.now == 2.5

    def test_cancelled_timers_do_not_count_as_pending(self):
        loop = EventLoop()
        timers = [loop.timer_later(float(i + 1), lambda: None) for i in range(8)]
        for t in timers[::2]:
            t.cancel()
        assert loop.pending_events() == 4

    def test_compaction_preserves_dispatch_order(self):
        # Cancel more than half the queue so the tombstone threshold trips
        # compaction, then check the survivors fire in the exact order the
        # uncompacted heap would have produced.
        loop = EventLoop()
        order = []
        timers = []
        for i in range(100):
            timers.append(loop.timer_later(float(i % 10), order.append, i))
        for i, t in enumerate(timers):
            if i % 4 != 0:
                t.cancel()  # 75% tombstones: triggers in-place compaction
        assert loop.pending_events() == 25
        loop.run()
        expected = sorted(
            (i for i in range(100) if i % 4 == 0), key=lambda i: (i % 10, i)
        )
        assert order == expected

    def test_compaction_determinism_across_runs(self):
        def simulate():
            loop = EventLoop()
            trace = []
            live = {}

            def fire(tag):
                trace.append((round(loop.now, 9), tag))
                # Rearm and cancel from inside callbacks, interleaving
                # tombstone creation with dispatch.
                if tag < 200:
                    live[tag + 100] = loop.timer_later(0.5, fire, tag + 100)
                peer = live.pop(tag ^ 1, None)
                if peer is not None:
                    peer.cancel()

            for i in range(100):
                live[i] = loop.timer_later(float(i % 7) * 0.1, fire, i)
            loop.run()
            return trace

        assert simulate() == simulate()

    def test_cancel_interleaved_with_call_soon_order(self):
        # The ready FIFO and the heap share the seq counter; cancelling
        # heap entries must not disturb the merged dispatch order.
        loop = EventLoop()
        order = []
        loop.call_soon(order.append, "s1")
        t = loop.timer_at(0.0, order.append, "t1")
        loop.call_soon(order.append, "s2")
        loop.timer_at(0.0, order.append, "t2")
        t.cancel()
        loop.run()
        assert order == ["s1", "s2", "t2"]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def simulate():
            loop = EventLoop()
            trace = []

            def worker(name, period):
                for _ in range(5):
                    yield loop.timeout(period)
                    trace.append((round(loop.now, 9), name))

            loop.process(worker("a", 0.3))
            loop.process(worker("b", 0.2))
            loop.run()
            return trace

        assert simulate() == simulate()
