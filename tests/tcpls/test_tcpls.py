"""TCPLS baseline tests."""

import pytest

from repro.tcp import connect_pair
from repro.tcpls import tcpls_pair
from repro.testbed import Testbed


def make_bed():
    bed = Testbed.back_to_back()
    conn_c, conn_s = connect_pair(bed.client, bed.server, 5000)
    c, s = tcpls_pair(conn_c, conn_s)
    return bed, c, s


def run_echo(bed, c, s, size):
    results = {}

    def server():
        t = bed.server.app_thread(0)
        data = b""
        while len(data) < size:
            data += yield from s.recv(t)
        yield from s.send(t, data)

    def client():
        t = bed.client.app_thread(0)
        yield from c.send(t, b"\x5a" * size)
        data = b""
        while len(data) < size:
            data += yield from c.recv(t)
        results["echo"] = data

    bed.loop.process(server())
    done = bed.loop.process(client())
    bed.loop.run(until=5.0)
    assert done.triggered
    if not done.ok:
        raise done.value
    return results


class TestTcpls:
    @pytest.mark.parametrize("size", [64, 1024, 40_000])
    def test_echo(self, size):
        bed, c, s = make_bed()
        assert run_echo(bed, c, s, size)["echo"] == b"\x5a" * size

    def test_payload_encrypted_on_wire(self):
        bed, c, s = make_bed()
        sniffed = []
        original = bed.link._a_to_b.receiver

        def sniffer(packet):
            sniffed.append(bytes(packet.payload))
            original(packet)

        bed.link._a_to_b.receiver = sniffer

        def client():
            yield from c.send(bed.client.app_thread(0), b"TCPLS-SECRET" * 20)

        bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert b"TCPLS-SECRET" not in b"".join(sniffed)

    def test_custom_nonce_schedule_differs_from_ktls(self):
        # TCPLS's stream-salted nonce produces different ciphertext than a
        # plain record-counter nonce for the same keys -- the property
        # that makes it incompatible with AO offload (paper §2.1).
        from repro.crypto.aead import new_aead
        from repro.tls.keyschedule import TrafficKeys
        from repro.tls.record import RecordProtection

        bed, c, s = make_bed()
        keys = TrafficKeys(key=b"\x55" * 16, iv=b"\x66" * 12)
        plain_counter = RecordProtection(new_aead("aes-128-gcm", keys.key), keys.iv)
        sniffed = []
        original = bed.link._a_to_b.receiver

        def sniffer(packet):
            sniffed.append(bytes(packet.payload))
            original(packet)

        bed.link._a_to_b.receiver = sniffer

        def client():
            yield from c.send(bed.client.app_thread(0), b"z" * 32)

        bed.loop.process(client())
        bed.loop.run(until=1.0)
        wire = b"".join(sniffed)
        # Sealing the same inner frame at record-counter seqno 0 gives
        # different bytes than what TCPLS put on the wire.
        assert plain_counter.seal(wire[: 10]) not in wire

    def test_no_offload_interface(self):
        # TcplsConnection deliberately exposes no HW mode.
        bed, c, s = make_bed()
        assert not hasattr(c, "mode")

    def test_record_counters_track(self):
        bed, c, s = make_bed()
        run_echo(bed, c, s, 40_000)
        assert c.records_sealed >= 3  # >16KB payload -> multiple records
        assert s.records_opened == c.records_sealed
