"""RPC framing tests over bytestream channels."""

from repro.apps.rpc import RpcChannel, frame
from repro.errors import ProtocolError
from repro.ktls import ktls_pair
from repro.tcp import connect_pair
from repro.testbed import Testbed


def build(mode="sw"):
    bed = Testbed.back_to_back()
    conn_c, conn_s = connect_pair(bed.client, bed.server, 5000)
    c, s = ktls_pair(conn_c, conn_s, mode)
    return bed, RpcChannel(c), RpcChannel(s)


class TestFraming:
    def test_frame_layout(self):
        framed = frame(b"abc", 7, False)
        assert len(framed) == 13 + 3
        assert framed[-3:] == b"abc"

    def test_feed_and_pop(self):
        rpc = RpcChannel(None)
        rpc.feed(frame(b"x", 1, False) + frame(b"y", 2, True))
        assert rpc.pop_message() == (1, False, b"x")
        assert rpc.pop_message() == (2, True, b"y")
        assert rpc.pop_message() is None

    def test_partial_feed(self):
        rpc = RpcChannel(None)
        data = frame(b"payload", 1, False)
        rpc.feed(data[:5])
        assert rpc.pop_message() is None
        rpc.feed(data[5:])
        assert rpc.pop_message() == (1, False, b"payload")


class TestRoundTrip:
    def test_blocking_call(self):
        bed, crpc, srpc = build()
        result = {}

        def server():
            t = bed.server.app_thread(0)
            req_id, payload = yield from srpc.recv_request(t)
            yield from srpc.send_response(t, req_id, payload.upper())

        def client():
            t = bed.client.app_thread(0)
            result["r"] = yield from crpc.call(t, b"hello")

        bed.loop.process(server())
        done = bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert done.ok and result["r"] == b"HELLO"

    def test_pipelined_requests(self):
        bed, crpc, srpc = build()
        got = []

        def server():
            t = bed.server.app_thread(0)
            for _ in range(5):
                req_id, payload = yield from srpc.recv_request(t)
                yield from srpc.send_response(t, req_id, payload)

        def client():
            t = bed.client.app_thread(0)
            ids = []
            for i in range(5):
                ids.append((yield from crpc.send_request(t, bytes([i]))))
            for _ in range(5):
                req_id, payload = yield from crpc.recv_response(t)
                got.append((req_id, payload))

        bed.loop.process(server())
        done = bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert done.ok
        assert sorted(got) == [(i + 1, bytes([i])) for i in range(5)]

    def test_response_type_mismatch_detected(self):
        bed, crpc, srpc = build()

        def server():
            t = bed.server.app_thread(0)
            # Misbehaving server: sends a *request* back.
            yield from srpc.recv_request(t)
            yield from srpc.send_request(t, b"surprise")

        def client():
            t = bed.client.app_thread(0)
            yield from crpc.call(t, b"hi")

        bed.loop.process(server())
        done = bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert not done.ok and isinstance(done.value, ProtocolError)

    def test_large_payload(self):
        bed, crpc, srpc = build()
        result = {}
        payload = bytes(i & 0xFF for i in range(150_000))

        def server():
            t = bed.server.app_thread(0)
            req_id, got = yield from srpc.recv_request(t)
            yield from srpc.send_response(t, req_id, got)

        def client():
            t = bed.client.app_thread(0)
            result["r"] = yield from crpc.call(t, payload)

        bed.loop.process(server())
        done = bed.loop.process(client())
        bed.loop.run(until=5.0)
        assert done.ok and result["r"] == payload
