"""Key-value store tests: protocol, store semantics, both servers."""

import pytest

from repro.apps.kvstore import (
    KVStore,
    MessageKvServer,
    StreamKvServer,
    decode_command,
    decode_reply,
    encode_get,
    encode_reply,
    encode_set,
)
from repro.apps.kvstore.protocol import OP_GET, OP_SET, STATUS_NOT_FOUND, STATUS_OK
from repro.apps.rpc import RpcChannel
from repro.errors import ProtocolError
from repro.homa import HomaSocket, HomaTransport
from repro.host.costs import CostModel
from repro.ktls import ktls_pair
from repro.tcp import connect_pair
from repro.testbed import Testbed


class TestProtocol:
    def test_get_roundtrip(self):
        op, key, value = decode_command(encode_get(b"user1"))
        assert op == OP_GET and key == b"user1" and value == b""

    def test_set_roundtrip(self):
        op, key, value = decode_command(encode_set(b"k", b"v" * 100))
        assert op == OP_SET and key == b"k" and value == b"v" * 100

    def test_reply_roundtrip(self):
        status, value = decode_reply(encode_reply(STATUS_OK, b"data"))
        assert status == STATUS_OK and value == b"data"

    def test_truncated_command_rejected(self):
        with pytest.raises(ProtocolError):
            decode_command(encode_set(b"k", b"v" * 100)[:-5])

    def test_short_command_rejected(self):
        with pytest.raises(ProtocolError):
            decode_command(b"\x01")


class TestStore:
    def test_set_then_get(self):
        store = KVStore(CostModel())
        reply, _ = store.execute(encode_set(b"k", b"value"))
        assert decode_reply(reply)[0] == STATUS_OK
        reply, _ = store.execute(encode_get(b"k"))
        assert decode_reply(reply) == (STATUS_OK, b"value")

    def test_missing_key(self):
        store = KVStore(CostModel())
        reply, _ = store.execute(encode_get(b"nope"))
        assert decode_reply(reply)[0] == STATUS_NOT_FOUND
        assert store.misses == 1

    def test_overwrite(self):
        store = KVStore(CostModel())
        store.execute(encode_set(b"k", b"v1"))
        store.execute(encode_set(b"k", b"v2"))
        reply, _ = store.execute(encode_get(b"k"))
        assert decode_reply(reply)[1] == b"v2"

    def test_preload_free(self):
        store = KVStore(CostModel())
        store.preload({b"a": b"1", b"b": b"2"})
        assert len(store) == 2

    def test_costs_scale_with_value_size(self):
        store = KVStore(CostModel())
        store.preload({b"small": b"x", b"big": b"y" * 4096})
        _, small_cost = store.execute(encode_get(b"small"))
        _, big_cost = store.execute(encode_get(b"big"))
        assert big_cost > small_cost

    def test_unknown_op_rejected(self):
        store = KVStore(CostModel())
        import struct

        bad = struct.pack("!BH", 99, 1) + b"k" + struct.pack("!I", 0)
        with pytest.raises(ProtocolError):
            store.execute(bad)


class TestMessageServer:
    def test_serves_over_homa(self):
        bed = Testbed.back_to_back()
        ct = HomaTransport(bed.client)
        st = HomaTransport(bed.server)
        csock = HomaSocket(ct, bed.client.alloc_port())
        ssock = HomaSocket(st, 6379)
        store = KVStore(bed.server.costs)
        server = MessageKvServer(ssock, store)
        bed.loop.process(server.run(bed.server.app_thread(0)))
        results = {}

        def client():
            t = bed.client.app_thread(0)
            reply = yield from csock.call(
                t, bed.server.addr, 6379, encode_set(b"k", b"hello")
            )
            assert decode_reply(reply)[0] == STATUS_OK
            reply = yield from csock.call(t, bed.server.addr, 6379, encode_get(b"k"))
            results["get"] = decode_reply(reply)

        done = bed.loop.process(client())
        bed.loop.run(until=1.0)
        assert done.ok
        assert results["get"] == (STATUS_OK, b"hello")
        assert server.requests_served == 2


class TestStreamServer:
    def test_serves_multiple_connections_single_thread(self):
        bed = Testbed.back_to_back()
        store = KVStore(bed.server.costs)
        server = StreamKvServer(bed.loop, bed.server.costs, store)
        channels = []
        for _ in range(3):
            conn_c, conn_s = connect_pair(bed.client, bed.server, bed.server.alloc_port())
            c, s = ktls_pair(conn_c, conn_s, "sw")
            server.add_client(s)
            channels.append(RpcChannel(c))
        bed.loop.process(server.run(bed.server.app_thread(0)))
        results = {}

        def client(i, rpc):
            t = bed.client.app_thread(i)
            reply = yield from rpc.call(t, encode_set(b"key%d" % i, b"val%d" % i))
            assert decode_reply(reply)[0] == STATUS_OK
            reply = yield from rpc.call(t, encode_get(b"key%d" % i))
            results[i] = decode_reply(reply)[1]

        procs = [bed.loop.process(client(i, rpc)) for i, rpc in enumerate(channels)]
        bed.loop.run(until=2.0)
        assert all(p.ok for p in procs)
        assert results == {0: b"val0", 1: b"val1", 2: b"val2"}
        assert server.requests_served == 6

    def test_pipelined_requests_one_connection(self):
        bed = Testbed.back_to_back()
        store = KVStore(bed.server.costs)
        store.preload({b"key%d" % i: b"v%d" % i for i in range(10)})
        server = StreamKvServer(bed.loop, bed.server.costs, store)
        conn_c, conn_s = connect_pair(bed.client, bed.server, 6379)
        c, s = ktls_pair(conn_c, conn_s, "sw")
        server.add_client(s)
        bed.loop.process(server.run(bed.server.app_thread(0)))
        rpc = RpcChannel(c)
        got = []

        def client():
            t = bed.client.app_thread(0)
            for i in range(10):
                yield from rpc.send_request(t, encode_get(b"key%d" % i))
            for _ in range(10):
                _req, payload = yield from rpc.recv_response(t)
                got.append(decode_reply(payload)[1])

        done = bed.loop.process(client())
        bed.loop.run(until=2.0)
        assert done.ok
        assert sorted(got) == sorted(b"v%d" % i for i in range(10))
