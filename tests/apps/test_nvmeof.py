"""NVMe-oF tests: device model, protocol, end-to-end reads."""

import random

import pytest

from repro.apps.fio import MessageFioDriver, StreamFioDriver
from repro.apps.nvmeof import (
    MessageNvmeTarget,
    NvmeDevice,
    StreamNvmeTarget,
    decode_completion,
    decode_read_cmd,
    encode_completion,
    encode_read_cmd,
)
from repro.errors import ProtocolError, ReproError
from repro.homa import HomaSocket, HomaTransport
from repro.ktls import ktls_pair
from repro.sim.event_loop import EventLoop
from repro.tcp import connect_pair
from repro.testbed import Testbed


class TestProtocol:
    def test_command_roundtrip(self):
        cid, lba, blocks = decode_read_cmd(encode_read_cmd(5, 1234, 2))
        assert (cid, lba, blocks) == (5, 1234, 2)

    def test_completion_roundtrip(self):
        status, cid, data = decode_completion(encode_completion(7, b"D" * 4096))
        assert status == 0 and cid == 7 and data == b"D" * 4096

    def test_short_capsules_rejected(self):
        with pytest.raises(ProtocolError):
            decode_read_cmd(b"\x02")
        with pytest.raises(ProtocolError):
            decode_completion(b"\x00")

    def test_unsupported_opcode(self):
        import struct

        bad = struct.pack("!BHQI", 0x01, 0, 0, 1)  # write, unsupported
        with pytest.raises(ProtocolError):
            decode_read_cmd(bad)


class TestDevice:
    def test_read_latency_plausible(self):
        loop = EventLoop()
        dev = NvmeDevice(loop, random.Random(1))
        times = []

        def body():
            t0 = loop.now
            data = yield from dev.read_block(100)
            times.append(loop.now - t0)
            assert len(data) == 4096

        loop.run_process(body())
        assert 60e-6 < times[0] < 400e-6

    def test_channel_parallelism(self):
        loop = EventLoop()
        dev = NvmeDevice(loop, random.Random(1), channels=8,
                         base_read_latency=100e-6, tail_scale=1e-9)

        def body(lba):
            yield from dev.read_block(lba)

        # 8 reads on distinct channels complete in ~1 service time.
        for lba in range(8):
            loop.process(body(lba))
        loop.run()
        assert loop.now < 150e-6

    def test_same_channel_serialises(self):
        loop = EventLoop()
        dev = NvmeDevice(loop, random.Random(1), channels=8,
                         base_read_latency=100e-6, tail_scale=1e-9)

        def body():
            yield from dev.read_block(0)

        for _ in range(3):
            loop.process(body())  # all LBA 0: same channel
        loop.run()
        assert loop.now > 290e-6

    def test_lba_out_of_range(self):
        loop = EventLoop()
        dev = NvmeDevice(loop, random.Random(1), num_blocks=100)

        def body():
            yield from dev.read_block(100)

        with pytest.raises(ReproError):
            loop.run_process(body())

    def test_deterministic_content(self):
        loop = EventLoop()
        dev = NvmeDevice(loop, random.Random(1))
        out = {}

        def body():
            out["data"] = yield from dev.read_block(0x1AB)

        loop.run_process(body())
        assert out["data"] == bytes([0xAB]) * 4096


class TestEndToEnd:
    def test_reads_over_homa(self):
        bed = Testbed.back_to_back()
        ct = HomaTransport(bed.client)
        st = HomaTransport(bed.server)
        csock = HomaSocket(ct, bed.client.alloc_port())
        ssock = HomaSocket(st, 4420)
        device = NvmeDevice(bed.loop, random.Random(5))
        target = MessageNvmeTarget(ssock, device)
        bed.loop.process(target.run(bed.server.app_thread(0)))
        driver = MessageFioDriver(
            csock, bed.server.addr, 4420, device.num_blocks, random.Random(6)
        )
        for i in range(4):  # iodepth 4
            bed.loop.process(driver.worker(bed.client.app_thread(i), duration=3e-3))
        bed.loop.run(until=10e-3)
        assert driver.result.completed > 10
        assert driver.result.errors == 0
        assert 60 < driver.result.p50_us() < 500

    def test_reads_over_ktls(self):
        bed = Testbed.back_to_back()
        conn_c, conn_s = connect_pair(bed.client, bed.server, 4420)
        c, s = ktls_pair(conn_c, conn_s, "sw")
        device = NvmeDevice(bed.loop, random.Random(5))
        target = StreamNvmeTarget(s, device)
        bed.loop.process(target.run(bed.server.app_thread(0)))
        driver = StreamFioDriver(c, device.num_blocks, random.Random(6))
        bed.loop.process(
            driver.run(bed.client.app_thread(0), iodepth=4, duration=3e-3)
        )
        bed.loop.run(until=10e-3)
        assert driver.result.completed > 10
        assert driver.result.errors == 0
        assert 60 < driver.result.p50_us() < 500

    def test_iodepth_increases_throughput(self):
        def throughput(iodepth):
            bed = Testbed.back_to_back()
            conn_c, conn_s = connect_pair(bed.client, bed.server, 4420)
            c, s = ktls_pair(conn_c, conn_s, None)
            device = NvmeDevice(bed.loop, random.Random(5))
            target = StreamNvmeTarget(s, device)
            bed.loop.process(target.run(bed.server.app_thread(0)))
            driver = StreamFioDriver(c, device.num_blocks, random.Random(6))
            bed.loop.process(
                driver.run(bed.client.app_thread(0), iodepth=iodepth, duration=5e-3)
            )
            bed.loop.run(until=20e-3)
            return driver.result.completed

        assert throughput(8) > 2 * throughput(1)
