"""YCSB workload generator tests."""

import random
from collections import Counter

import pytest

from repro.apps.ycsb import (
    WORKLOADS,
    LatestGenerator,
    YcsbWorkload,
    ZipfianGenerator,
    key_bytes,
)


class TestZipfian:
    def test_range(self):
        gen = ZipfianGenerator(1000, random.Random(1))
        for _ in range(1000):
            assert 0 <= gen.next() < 1000

    def test_skew_towards_head(self):
        gen = ZipfianGenerator(10_000, random.Random(1))
        counts = Counter(gen.next() for _ in range(20_000))
        head = sum(counts[i] for i in range(10))
        # With theta=0.99, the top-10 items draw a large share.
        assert head / 20_000 > 0.25

    def test_rank_frequency_monotone_ish(self):
        gen = ZipfianGenerator(100, random.Random(2))
        counts = Counter(gen.next() for _ in range(50_000))
        assert counts[0] > counts[10] > counts[90]

    def test_single_item(self):
        gen = ZipfianGenerator(1, random.Random(1))
        assert gen.next() == 0

    def test_deterministic(self):
        a = ZipfianGenerator(100, random.Random(7))
        b = ZipfianGenerator(100, random.Random(7))
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]


class TestLatest:
    def test_skews_to_recent(self):
        gen = LatestGenerator(1000, random.Random(1))
        samples = [gen.next() for _ in range(10_000)]
        recent = sum(1 for s in samples if s >= 900)
        assert recent / 10_000 > 0.4

    def test_insert_extends_range(self):
        gen = LatestGenerator(10, random.Random(1))
        new_index = gen.insert()
        assert new_index == 10
        assert gen.count == 11


class TestWorkloads:
    def test_four_workloads_defined(self):
        assert set(WORKLOADS) == {"A", "B", "C", "D"}

    def test_mixes_sum_to_one(self):
        for spec in WORKLOADS.values():
            total = spec.read_fraction + spec.update_fraction + spec.insert_fraction
            assert total == pytest.approx(1.0)

    def test_workload_a_mix(self):
        wl = YcsbWorkload(WORKLOADS["A"], 1000, 100, random.Random(3))
        ops = Counter(wl.next_op()[0] for _ in range(10_000))
        assert 0.45 < ops["read"] / 10_000 < 0.55
        assert 0.45 < ops["update"] / 10_000 < 0.55

    def test_workload_c_read_only(self):
        wl = YcsbWorkload(WORKLOADS["C"], 1000, 100, random.Random(3))
        ops = Counter(wl.next_op()[0] for _ in range(5_000))
        assert ops == Counter(read=5_000)

    def test_workload_d_inserts(self):
        wl = YcsbWorkload(WORKLOADS["D"], 1000, 100, random.Random(3))
        ops = Counter(wl.next_op()[0] for _ in range(10_000))
        assert 0.03 < ops["insert"] / 10_000 < 0.07
        assert ops["update"] == 0

    def test_update_values_sized(self):
        wl = YcsbWorkload(WORKLOADS["A"], 1000, 256, random.Random(3))
        while True:
            op, key, value = wl.next_op()
            if op == "update":
                assert len(value) == 256
                break

    def test_initial_data(self):
        wl = YcsbWorkload(WORKLOADS["B"], 100, 64, random.Random(3))
        data = wl.initial_data()
        assert len(data) == 100
        assert all(len(v) == 64 for v in data.values())

    def test_keys_fixed_width(self):
        assert key_bytes(0) == b"user000000000000"
        assert len(key_bytes(999999)) == len(key_bytes(0))
