"""dcache: LRU store semantics, wire protocol, end-to-end write-behind."""

import pytest

from repro.apps.dcache import (
    CacheStore,
    DCacheCluster,
    OP_GET,
    OP_PUT,
    STATUS_FILLED,
    STATUS_HIT,
    STATUS_NOT_FOUND,
    STATUS_OK,
    decode_reply,
    decode_request,
    encode_reply,
    encode_request,
    shard_of,
)
from repro.bench.loaded import LOAD_HOMA_CONFIG
from repro.errors import ProtocolError, ReproError
from repro.testbed import ClosTestbed


class TestCacheStore:
    def test_capacity_validated(self):
        with pytest.raises(ProtocolError):
            CacheStore(0)

    def test_get_hit_miss_counters(self):
        store = CacheStore(4)
        store.put(b"a", b"1", dirty=False)
        assert store.get(b"a") == b"1"
        assert store.get(b"b") is None
        assert store.hits == 1
        assert store.misses == 1

    def test_lru_evicts_clean_before_dirty(self):
        store = CacheStore(2)
        store.put(b"dirty", b"d", dirty=True)
        store.put(b"clean", b"c", dirty=False)
        # The dirty key is older, but the clean one is sacrificed first.
        casualties = store.put(b"new", b"n", dirty=False)
        assert casualties == []
        assert store.peek(b"clean") is None
        assert store.peek(b"dirty") == b"d"
        assert store.evicted_clean == 1

    def test_dirty_eviction_returns_casualty_for_inline_flush(self):
        store = CacheStore(2)
        store.put(b"d1", b"1", dirty=True)
        store.put(b"d2", b"2", dirty=True)
        casualties = store.put(b"d3", b"3", dirty=True)
        assert casualties == [(b"d1", b"1")]
        assert store.evicted_dirty == 1
        assert b"d1" not in store.dirty_keys()

    def test_peek_does_not_touch_lru_order(self):
        store = CacheStore(2)
        store.put(b"a", b"1", dirty=False)
        store.put(b"b", b"2", dirty=False)
        store.peek(b"a")  # no promotion
        store.put(b"c", b"3", dirty=False)
        assert store.peek(b"a") is None  # still the LRU victim

    def test_mark_clean_and_dirty_count(self):
        store = CacheStore(4)
        store.put(b"a", b"1", dirty=True)
        store.put(b"b", b"2", dirty=True)
        assert store.dirty_count == 2
        store.mark_clean(b"a")
        assert store.dirty_count == 1
        assert store.dirty_keys() == [b"b"]

    def test_delete_clears_dirtiness(self):
        store = CacheStore(4)
        store.put(b"a", b"1", dirty=True)
        store.delete(b"a")
        assert store.dirty_count == 0
        assert store.peek(b"a") is None


class TestProtocol:
    def test_request_round_trip(self):
        wire = encode_request(OP_PUT, b"key", b"value")
        op, key, value = decode_request(wire)
        assert (op, key, value) == (OP_PUT, b"key", b"value")

    def test_reply_round_trip(self):
        for status in (STATUS_OK, STATUS_HIT, STATUS_FILLED, STATUS_NOT_FOUND):
            status2, value = decode_reply(encode_reply(status, b"v"))
            assert (status2, value) == (status, b"v")

    def test_empty_value_allowed(self):
        op, key, value = decode_request(encode_request(OP_GET, b"k", b""))
        assert value == b""

    def test_shard_of_stable_and_in_range(self):
        assert shard_of(b"somekey", 3) == shard_of(b"somekey", 3)
        spread = {shard_of(b"k%d" % i, 3) for i in range(64)}
        assert spread == {0, 1, 2}


def _cluster(**kw):
    bed = ClosTestbed.leaf_spine(
        num_racks=2, hosts_per_rack=2, num_spines=2, num_app_cores=4, seed=1
    )
    kw.setdefault("config", LOAD_HOMA_CONFIG)
    return bed, DCacheCluster(bed, **kw)


def _drive(bed, body):
    done = bed.loop.process(body())
    bed.run(until=bed.loop.now + 1.0)
    assert done.triggered and done.ok, getattr(done, "value", None)


class TestClusterEndToEnd:
    def test_read_through_then_hit(self):
        bed, cluster = _cluster(cache_capacity=8)
        cluster.origin.preload({b"k": b"v" * 32})
        client = cluster.client(0)

        def body():
            thread = bed.hosts[0].app_thread(3)
            first = yield from client.get(thread, b"k")
            second = yield from client.get(thread, b"k")
            assert first == second == b"v" * 32

        _drive(bed, body)
        assert client.fills == 1
        assert client.hits == 1
        assert cluster.origin.reads == 1

    def test_write_behind_acks_before_origin_and_drains_durable(self):
        bed, cluster = _cluster(cache_capacity=8, flush_batch=64,
                                flush_interval=10.0)
        client = cluster.client(0)

        def body():
            thread = bed.hosts[0].app_thread(3)
            yield from client.put(thread, b"wb", b"payload")
            # Acked while still write-behind: origin hasn't seen it.
            assert cluster.origin.get(b"wb") is None

        _drive(bed, body)
        cluster.drain()
        assert cluster.origin.get(b"wb") == b"payload"
        assert sum(n.store.dirty_count for n in cluster.nodes) == 0

    def test_overwrites_coalesce_into_one_origin_write(self):
        bed, cluster = _cluster(cache_capacity=8, flush_batch=64,
                                flush_interval=10.0)
        client = cluster.client(0)

        def body():
            thread = bed.hosts[0].app_thread(3)
            for i in range(5):
                yield from client.put(thread, b"hot", b"v%d" % i)

        _drive(bed, body)
        cluster.drain()
        assert cluster.origin.get(b"hot") == b"v4"
        assert cluster.origin.writes == 1  # five puts, one flushed write

    def test_dirty_eviction_flushes_inline_no_loss(self):
        bed, cluster = _cluster(cache_capacity=2, flush_batch=64,
                                flush_interval=10.0)
        client = cluster.client(0)
        written = {}

        def body():
            thread = bed.hosts[0].app_thread(3)
            for i in range(12):
                key, value = b"k%d" % i, b"v%d" % i * 8
                yield from client.put(thread, key, value)
                written[key] = value

        _drive(bed, body)
        cluster.drain()
        for key, value in written.items():
            assert cluster.origin.get(key) == value
        assert sum(n.eviction_flushes for n in cluster.nodes) > 0

    def test_get_missing_key_not_found(self):
        bed, cluster = _cluster(cache_capacity=4)
        client = cluster.client(0)

        def body():
            thread = bed.hosts[0].app_thread(3)
            value = yield from client.get(thread, b"absent")
            assert value is None

        _drive(bed, body)
        assert client.not_found == 1

    def test_delete_propagates_to_origin(self):
        bed, cluster = _cluster(cache_capacity=4)
        cluster.origin.preload({b"gone": b"x"})
        client = cluster.client(0)

        def body():
            thread = bed.hosts[0].app_thread(3)
            yield from client.delete(thread, b"gone")
            value = yield from client.get(thread, b"gone")
            assert value is None

        _drive(bed, body)
        cluster.drain()
        assert cluster.origin.get(b"gone") is None

    def test_drain_failure_reports(self):
        bed, cluster = _cluster(cache_capacity=4, flush_batch=64,
                                flush_interval=10.0)
        # Sabotage: point one shard's flush target at a host with no
        # origin socket.  Its write-behind batch can never land, and
        # drain surfaces the failure instead of hanging forever.
        victim = cluster.nodes[0]
        victim.origin_addr = cluster.nodes[1].socket.transport.host.addr
        client = cluster.client(0)

        def body():
            thread = bed.hosts[0].app_thread(3)
            for i in range(12):
                yield from client.put(thread, b"k%d" % i, b"v")

        _drive(bed, body)
        if victim.store.dirty_count:
            with pytest.raises(ReproError):
                cluster.drain()
