"""Property-based TCP reliability: arbitrary loss patterns never corrupt."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.headers import PacketType
from repro.tcp import connect_pair
from repro.testbed import Testbed


def transfer_with_loss(drop_set, payload_len, both_directions=False):
    bed = Testbed.back_to_back()
    c, s = connect_pair(bed.client, bed.server, 5000, rto=0.3e-3)
    counters = {"a": 0, "b": 0}

    def loss_fn(side):
        def fn(packet):
            if packet.transport.pkt_type != PacketType.DATA:
                return False
            counters[side] += 1
            return counters[side] in drop_set

        return fn

    bed.link.set_loss_fn("a", loss_fn("a"))
    if both_directions:
        bed.link.set_loss_fn("b", loss_fn("b"))
    payload = bytes(i & 0xFF for i in range(payload_len))
    got = {}

    def tx():
        yield from c.send(bed.client.app_thread(0), payload)

    def rx():
        thread = bed.server.app_thread(0)
        data = b""
        while len(data) < payload_len:
            data += yield from s.recv(thread)
        got["data"] = data
        yield from s.send(thread, b"done")

    def rx_ack():
        thread = bed.client.app_thread(1)
        data = b""
        while len(data) < 4:
            data += yield from c.recv(thread)
        got["ack"] = data

    bed.loop.process(tx())
    bed.loop.process(rx())
    done = bed.loop.process(rx_ack())
    bed.loop.run(until=10.0)
    assert done.triggered, f"deadlock with drops {sorted(drop_set)}"
    assert got["data"] == payload
    assert got["ack"] == b"done"


class TestLossProperties:
    @given(
        st.sets(st.integers(min_value=1, max_value=40), max_size=8),
        st.integers(min_value=1, max_value=50_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_any_loss_pattern_recovers(self, drop_set, payload_len):
        transfer_with_loss(drop_set, payload_len)

    @given(st.sets(st.integers(min_value=1, max_value=20), max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_bidirectional_loss_recovers(self, drop_set):
        transfer_with_loss(drop_set, 20_000, both_directions=True)


class TestHomaLossProperties:
    @given(
        st.sets(st.integers(min_value=1, max_value=30), max_size=6),
        st.integers(min_value=1, max_value=40_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_loss_pattern_delivers_message(self, drop_set, size):
        from repro.homa import HomaConfig, HomaSocket, HomaTransport

        bed = Testbed.back_to_back()
        config = HomaConfig(resend_interval=100e-6)
        ct = HomaTransport(bed.client, config)
        st_ = HomaTransport(bed.server, HomaConfig(resend_interval=100e-6))
        csock = HomaSocket(ct, bed.client.alloc_port())
        ssock = HomaSocket(st_, 6000)
        counter = [0]

        def loss_fn(packet):
            if packet.transport.pkt_type == PacketType.DATA:
                counter[0] += 1
                return counter[0] in drop_set
            return False

        bed.link.set_loss_fn("a", loss_fn)

        def server():
            thread = bed.server.app_thread(0)
            rpc = yield from ssock.recv_request(thread)
            yield from ssock.reply(thread, rpc, rpc.payload)

        bed.loop.process(server())
        payload = bytes(i & 0xFF for i in range(size))
        out = {}

        def client():
            thread = bed.client.app_thread(0)
            out["r"] = yield from csock.call(thread, bed.server.addr, 6000, payload)

        done = bed.loop.process(client())
        bed.loop.run(until=10.0)
        assert done.triggered and done.ok, f"drops={sorted(drop_set)} size={size}"
        assert out["r"] == payload
