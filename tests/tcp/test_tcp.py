"""TCP substrate tests: reliability, ordering, retransmission, HoLB."""

from repro.net.headers import PacketType
from repro.tcp import connect_pair
from repro.testbed import Testbed


def run_echo(bed, c, s, size, count=1):
    results = {}

    def server():
        t = bed.server.app_thread(0)
        for _ in range(count):
            data = b""
            while len(data) < size:
                data += yield from s.recv(t)
            yield from s.send(t, data)

    def client():
        t = bed.client.app_thread(0)
        rtts = []
        for _ in range(count):
            t0 = bed.loop.now
            yield from c.send(t, b"\xab" * size)
            data = b""
            while len(data) < size:
                data += yield from c.recv(t)
            rtts.append(bed.loop.now - t0)
            results["echo"] = data
        results["rtts"] = rtts

    bed.loop.process(server())
    done = bed.loop.process(client())
    bed.loop.run(until=5.0)
    assert done.triggered, "client did not finish (deadlock?)"
    if not done.ok:
        raise done.value
    return results


class TestBasics:
    def test_small_echo(self):
        bed = Testbed.back_to_back()
        c, s = connect_pair(bed.client, bed.server, 5000)
        results = run_echo(bed, c, s, 64)
        assert results["echo"] == b"\xab" * 64

    def test_multi_packet_echo(self):
        bed = Testbed.back_to_back()
        c, s = connect_pair(bed.client, bed.server, 5000)
        results = run_echo(bed, c, s, 8192)
        assert results["echo"] == b"\xab" * 8192

    def test_rtt_in_plausible_range(self):
        bed = Testbed.back_to_back()
        c, s = connect_pair(bed.client, bed.server, 5000)
        results = run_echo(bed, c, s, 64)
        rtt = results["rtts"][0]
        assert 5e-6 < rtt < 100e-6  # tens of microseconds

    def test_data_integrity_large_transfer(self):
        bed = Testbed.back_to_back()
        c, s = connect_pair(bed.client, bed.server, 5000)
        payload = bytes(i & 0xFF for i in range(300_000))
        got = {}

        def tx():
            yield from c.send(bed.client.app_thread(0), payload)

        def rx():
            t = bed.server.app_thread(0)
            data = b""
            while len(data) < len(payload):
                data += yield from s.recv(t)
            got["data"] = data

        bed.loop.process(tx())
        done = bed.loop.process(rx())
        bed.loop.run(until=5.0)
        assert done.triggered and done.ok
        assert got["data"] == payload

    def test_bidirectional_concurrent(self):
        bed = Testbed.back_to_back()
        c, s = connect_pair(bed.client, bed.server, 5000)
        got = {}

        def side(name, conn, thread, payload):
            yield from conn.send(thread, payload)
            data = b""
            while len(data) < 1000:
                data += yield from conn.recv(thread)
            got[name] = data

        p1 = bed.loop.process(side("c", c, bed.client.app_thread(0), b"c" * 1000))
        p2 = bed.loop.process(side("s", s, bed.server.app_thread(0), b"s" * 1000))
        bed.loop.run(until=5.0)
        assert p1.ok and p2.ok
        assert got["c"] == b"s" * 1000 and got["s"] == b"c" * 1000

    def test_empty_send_rejected(self):
        from repro.errors import TransportError

        bed = Testbed.back_to_back()
        c, _ = connect_pair(bed.client, bed.server, 5000)

        def body():
            yield from c.send(bed.client.app_thread(0), b"")

        proc = bed.loop.process(body())
        bed.loop.run()
        assert not proc.ok and isinstance(proc.value, TransportError)


class TestLossRecovery:
    def _lossy_echo(self, drop_predicate, size=8192):
        bed = Testbed.back_to_back()
        c, s = connect_pair(bed.client, bed.server, 5000, rto=0.5e-3)
        state = {"count": 0}

        def loss_fn(packet):
            if packet.transport.pkt_type != PacketType.DATA:
                return False
            state["count"] += 1
            return drop_predicate(state["count"], packet)

        bed.link.set_loss_fn("a", loss_fn)
        results = run_echo(bed, c, s, size)
        assert results["echo"] == b"\xab" * size
        return bed, c, s

    def test_single_loss_recovers(self):
        bed, c, s = self._lossy_echo(lambda n, p: n == 2)
        assert c.retransmits >= 1

    def test_first_packet_loss_recovers(self):
        bed, c, s = self._lossy_echo(lambda n, p: n == 1)
        assert c.retransmits >= 1

    def test_fast_retransmit_triggers_on_dupacks(self):
        # Drop one mid-window packet; later packets generate dup ACKs.
        bed, c, s = self._lossy_echo(lambda n, p: n == 2, size=60_000)
        assert c.fast_retransmits >= 1

    def test_burst_loss_recovers(self):
        bed, c, s = self._lossy_echo(lambda n, p: n in (2, 3, 4), size=30_000)
        assert c.retransmits >= 1

    def test_periodic_loss_recovers(self):
        bed, c, s = self._lossy_echo(lambda n, p: n % 7 == 0, size=100_000)
        assert c.retransmits >= 1

    def test_out_of_order_buffering(self):
        # With loss, later segments arrive before the retransmitted gap;
        # delivery must stay in order.
        bed = Testbed.back_to_back()
        c, s = connect_pair(bed.client, bed.server, 5000, rto=0.5e-3)
        dropped = [False]

        def loss_fn(packet):
            if packet.transport.pkt_type == PacketType.DATA and not dropped[0]:
                dropped[0] = True
                return True
            return False

        bed.link.set_loss_fn("a", loss_fn)
        payload = bytes(i & 0xFF for i in range(50_000))
        got = {}

        def tx():
            yield from c.send(bed.client.app_thread(0), payload)

        def rx():
            t = bed.server.app_thread(0)
            data = b""
            while len(data) < len(payload):
                data += yield from s.recv(t)
            got["data"] = data

        bed.loop.process(tx())
        done = bed.loop.process(rx())
        bed.loop.run(until=5.0)
        assert done.ok and got["data"] == payload
