"""Whole-simulation determinism: identical seeds give identical results.

Reproducibility is a first-class property of the substrate: every RNG is
seeded, the event loop breaks ties deterministically, and nothing consults
wall time.  These tests re-run full experiments and demand bit-identical
outcomes.
"""

from repro.bench.runner import throughput, unloaded_rtt


class TestDeterminism:
    def test_unloaded_rtt_reproducible(self):
        a = unloaded_rtt("smt-hw", 1024, repetitions=8)
        b = unloaded_rtt("smt-hw", 1024, repetitions=8)
        assert a.mean == b.mean
        assert a.p99 == b.p99

    def test_throughput_reproducible(self):
        a = throughput("ktls-sw", 1024, 30, duration=1e-3)
        b = throughput("ktls-sw", 1024, 30, duration=1e-3)
        assert a.rate == b.rate
        assert a.server_cpu == b.server_cpu

    def test_kv_run_reproducible(self):
        from repro.bench.fig8 import run_kv

        assert run_kv("smt-sw", "B", 256, duration=1e-3) == run_kv(
            "smt-sw", "B", 256, duration=1e-3
        )

    def test_nvme_run_reproducible(self):
        from repro.bench.fig9 import run_point

        a = run_point("homa", 4, duration=2e-3)
        b = run_point("homa", 4, duration=2e-3)
        assert (a.p50_us, a.p99_us, a.iops) == (b.p50_us, b.p99_us, b.iops)

    def test_seeds_change_results(self):
        from repro.bench.fig9 import run_point

        a = run_point("homa", 4, duration=2e-3, seed=0)
        b = run_point("homa", 4, duration=2e-3, seed=1)
        assert a.p50_us != b.p50_us  # different device-latency draws

    def test_handshake_reproducible(self):
        from repro.bench.fig12 import _zero_rtt

        a = _zero_rtt(forward_secrecy=True)
        b = _zero_rtt(forward_secrecy=True)
        assert a.finished_at == b.finished_at

    def test_observability_snapshot_reproducible(self):
        """Two same-seed adversarial runs give byte-identical obs output.

        The full observability surface -- metrics snapshot, span summary,
        capture exports -- must be a pure function of the seed, or golden
        traces and failure reports would be unusable.
        """
        import json

        from tests.fuzz.harness import fuzz_one_seed

        def run(seed: int):
            obs = fuzz_one_seed(seed).bed.obs
            return (
                json.dumps(obs.snapshot()),
                obs.capture.export_jsonl(),
                obs.capture.export_text(),
                json.dumps(obs.tracer.export()),
            )

        assert run(99) == run(99)

    def test_observation_does_not_perturb_results(self):
        """Observed and unobserved same-seed runs measure identically."""
        a = unloaded_rtt("smt-hw", 1024, repetitions=8, observe=False)
        b = unloaded_rtt("smt-hw", 1024, repetitions=8, observe=True)
        assert a.mean == b.mean
        assert a.p99 == b.p99
        assert b.obs is not None and a.obs is None
