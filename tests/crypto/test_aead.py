"""AEAD interface and the FastAead simulation cipher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import FastAead, new_aead, shared_aead
from repro.crypto.gcm import AesGcm
from repro.errors import AuthenticationError, CryptoError

NONCE = bytes(12)


class TestFactory:
    def test_aes_128(self):
        assert isinstance(new_aead("aes-128-gcm", bytes(16)), AesGcm)

    def test_aes_256(self):
        assert isinstance(new_aead("aes-256-gcm", bytes(32)), AesGcm)

    def test_fast(self):
        assert isinstance(new_aead("fast", bytes(16)), FastAead)

    def test_unknown_kind(self):
        with pytest.raises(CryptoError):
            new_aead("rot13", bytes(16))

    def test_wrong_key_size(self):
        with pytest.raises(CryptoError):
            new_aead("aes-128-gcm", bytes(32))


class TestFastAead:
    def test_roundtrip(self):
        f = FastAead(bytes(16))
        out = f.seal(NONCE, b"payload", b"aad")
        assert f.open(NONCE, out, b"aad") == b"payload"

    def test_overhead_is_tag_size(self):
        f = FastAead(bytes(16))
        assert len(f.seal(NONCE, b"x" * 100)) == 100 + f.tag_size

    def test_ciphertext_differs_from_plaintext(self):
        f = FastAead(bytes(16))
        assert f.seal(NONCE, b"secret" * 10)[:60] != b"secret" * 10

    def test_tamper_detected(self):
        f = FastAead(bytes(16))
        out = bytearray(f.seal(NONCE, b"payload"))
        out[0] ^= 1
        with pytest.raises(AuthenticationError):
            f.open(NONCE, bytes(out))

    def test_wrong_aad_detected(self):
        f = FastAead(bytes(16))
        out = f.seal(NONCE, b"payload", b"a")
        with pytest.raises(AuthenticationError):
            f.open(NONCE, out, b"b")

    def test_nonce_binds_ciphertext(self):
        f = FastAead(bytes(16))
        out = f.seal(NONCE, b"payload")
        with pytest.raises(AuthenticationError):
            f.open(b"\x01" + NONCE[1:], out)

    def test_same_interface_as_gcm(self):
        for cls in (FastAead, AesGcm):
            obj = cls(bytes(16))
            assert obj.nonce_size == 12
            assert obj.tag_size == 16

    @given(st.binary(min_size=0, max_size=200), st.binary(min_size=0, max_size=32))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, plaintext, aad):
        f = FastAead(b"\x05" * 16)
        assert f.open(NONCE, f.seal(NONCE, plaintext, aad), aad) == plaintext


class TestFastAeadMemo:
    """The seal->open memo must be invisible to tampering and nonce reuse."""

    def test_tamper_on_shared_instance_detected(self):
        # One instance sealing and opening (the shared_aead topology): the
        # memo matches only byte-identical records, so every tamper falls
        # through to the full verify path.
        f = FastAead(bytes(16))
        sealed = f.seal(NONCE, b"payload" * 100, b"aad")
        assert f.open(NONCE, sealed, b"aad") == b"payload" * 100  # memo hit
        for i in (0, len(sealed) // 2, len(sealed) - 1):
            bad = bytearray(sealed)
            bad[i] ^= 1
            with pytest.raises(AuthenticationError):
                f.open(NONCE, bytes(bad), b"aad")

    def test_memo_checks_aad(self):
        f = FastAead(bytes(16))
        sealed = f.seal(NONCE, b"payload", b"right")
        with pytest.raises(AuthenticationError):
            f.open(NONCE, sealed, b"wrong")

    def test_memo_overwrite_still_opens_older_record(self):
        # Re-sealing under the same nonce evicts the memo entry; the older
        # record must still open via the full decrypt path.
        f = FastAead(bytes(16))
        first = f.seal(NONCE, b"first message")
        f.seal(NONCE, b"second message")
        assert f.open(NONCE, first) == b"first message"

    def test_memoryview_inputs_match_memo(self):
        f = FastAead(bytes(16))
        sealed = f.seal(NONCE, memoryview(b"zero-copy plaintext"), b"aad")
        assert f.open(memoryview(NONCE), memoryview(sealed), b"aad") == (
            b"zero-copy plaintext"
        )


class TestSharedAead:
    def test_same_key_shares_instance(self):
        assert shared_aead("fast", b"\x09" * 16) is shared_aead("fast", b"\x09" * 16)

    def test_different_key_or_kind_distinct(self):
        a = shared_aead("fast", b"\x0a" * 16)
        assert shared_aead("fast", b"\x0b" * 16) is not a
        assert shared_aead("aes-128-gcm", b"\x0a" * 16) is not a

    def test_shared_instance_roundtrips(self):
        sealer = shared_aead("fast", b"\x0c" * 16)
        opener = shared_aead("fast", b"\x0c" * 16)
        assert opener.open(NONCE, sealer.seal(NONCE, b"hello", b"x"), b"x") == b"hello"
