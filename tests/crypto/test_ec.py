"""secp256r1 group tests: known vectors and group laws."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ec import ECPoint, INFINITY, N, P256
from repro.errors import CryptoError

# Known scalar multiples of the P-256 generator (public test vectors).
K2_X = 0x7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978
K2_Y = 0x07775510DB8ED040293D9AC69F7430DBBA7DADE63CE982299E04B79D227873D1
K3_X = 0x5ECBE4D1A6330A44C8F7EF951D4BF165E6C6B721EFADA985FB41661BC6E7FD6C
K112233445566778899_X = 0x339150844EC15234807FE862A86BE77977DBFB3AE3D96F4C22795513AEAAB82F


class TestKnownVectors:
    def test_generator_on_curve(self):
        assert P256.is_on_curve(P256.generator)

    def test_2g(self):
        p = P256.scalar_mult(2)
        assert p.x == K2_X and p.y == K2_Y

    def test_3g(self):
        assert P256.scalar_mult(3).x == K3_X

    def test_large_scalar(self):
        assert P256.scalar_mult(112233445566778899).x == K112233445566778899_X

    def test_order_times_g_is_infinity(self):
        assert P256.scalar_mult(N).is_infinity

    def test_n_minus_1_is_negation_of_g(self):
        p = P256.scalar_mult(N - 1)
        assert p == P256.negate(P256.generator)


class TestGroupLaws:
    def test_addition_commutes(self):
        a, b = P256.scalar_mult(5), P256.scalar_mult(7)
        assert P256.add(a, b) == P256.add(b, a)

    def test_addition_associates(self):
        a, b, c = (P256.scalar_mult(k) for k in (3, 11, 29))
        assert P256.add(P256.add(a, b), c) == P256.add(a, P256.add(b, c))

    def test_identity_element(self):
        g = P256.generator
        assert P256.add(g, INFINITY) == g
        assert P256.add(INFINITY, g) == g

    def test_inverse_element(self):
        g = P256.generator
        assert P256.add(g, P256.negate(g)).is_infinity

    def test_doubling_matches_addition(self):
        g = P256.generator
        assert P256.add(g, g) == P256.scalar_mult(2)

    @given(st.integers(min_value=1, max_value=N - 1))
    @settings(max_examples=10, deadline=None)
    def test_scalar_distributes(self, k):
        # (k+1)G == kG + G
        assert P256.add(P256.scalar_mult(k), P256.generator) == P256.scalar_mult(k + 1)

    def test_scalar_mult_mod_n(self):
        k = random.Random(1).randrange(1, N)
        assert P256.scalar_mult(k) == P256.scalar_mult(k + N)


class TestEncoding:
    def test_roundtrip(self):
        p = P256.scalar_mult(12345)
        assert ECPoint.decode(p.encode()) == p

    def test_encoding_is_65_bytes_uncompressed(self):
        data = P256.generator.encode()
        assert len(data) == 65 and data[0] == 0x04

    def test_off_curve_point_rejected(self):
        data = bytearray(P256.generator.encode())
        data[-1] ^= 1
        with pytest.raises(CryptoError):
            ECPoint.decode(bytes(data))

    def test_bad_prefix_rejected(self):
        data = b"\x02" + P256.generator.encode()[1:]
        with pytest.raises(CryptoError):
            ECPoint.decode(data)

    def test_infinity_cannot_encode(self):
        with pytest.raises(CryptoError):
            INFINITY.encode()

    def test_scalar_mult_rejects_off_curve(self):
        with pytest.raises(CryptoError):
            P256.scalar_mult(2, ECPoint(1, 1))
