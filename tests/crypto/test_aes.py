"""AES block cipher tests against FIPS 197 vectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.errors import CryptoError

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

# FIPS 197 appendix C vectors.
FIPS_VECTORS = [
    ("000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191"),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


class TestKnownVectors:
    @pytest.mark.parametrize("key_hex,ct_hex", FIPS_VECTORS)
    def test_fips197_encrypt(self, key_hex, ct_hex):
        aes = AES(bytes.fromhex(key_hex))
        assert aes.encrypt_block(PLAINTEXT).hex() == ct_hex

    @pytest.mark.parametrize("key_hex,ct_hex", FIPS_VECTORS)
    def test_fips197_decrypt(self, key_hex, ct_hex):
        aes = AES(bytes.fromhex(key_hex))
        assert aes.decrypt_block(bytes.fromhex(ct_hex)) == PLAINTEXT

    def test_aes128_sp800_38a_vector(self):
        # NIST SP 800-38A F.1.1 ECB-AES128 block 1.
        aes = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = aes.encrypt_block(bytes.fromhex("6bc1bee22e409f96e93d7e117393172a"))
        assert ct.hex() == "3ad77bb40d7a3660a89ecaf32466ef97"


class TestInterface:
    def test_bad_key_length_rejected(self):
        with pytest.raises(CryptoError):
            AES(b"short")

    def test_bad_block_length_rejected(self):
        aes = AES(bytes(16))
        with pytest.raises(CryptoError):
            aes.encrypt_block(b"tiny")
        with pytest.raises(CryptoError):
            aes.decrypt_block(b"tiny")

    def test_vectorised_matches_scalar(self):
        aes = AES(bytes(range(16)))
        blocks = np.frombuffer(bytes(range(48)), dtype=np.uint8).reshape(3, 16).copy()
        out = aes.encrypt_blocks(blocks)
        for i in range(3):
            assert bytes(out[i]) == aes.encrypt_block(bytes(blocks[i]))

    def test_encrypt_blocks_shape_check(self):
        aes = AES(bytes(16))
        with pytest.raises(CryptoError):
            aes.encrypt_blocks(np.zeros((3, 8), dtype=np.uint8))


class TestCtrKeystream:
    def test_counter_increments_per_block(self):
        aes = AES(bytes(16))
        counter = bytes(12) + (5).to_bytes(4, "big")
        two = aes.ctr_keystream(counter, 2)
        b0 = aes.encrypt_block(bytes(12) + (5).to_bytes(4, "big"))
        b1 = aes.encrypt_block(bytes(12) + (6).to_bytes(4, "big"))
        assert two == b0 + b1

    def test_counter_wraps_32_bits(self):
        aes = AES(bytes(16))
        counter = bytes(12) + (0xFFFFFFFF).to_bytes(4, "big")
        two = aes.ctr_keystream(counter, 2)
        wrapped = aes.encrypt_block(bytes(12) + (0).to_bytes(4, "big"))
        assert two[16:] == wrapped

    def test_zero_blocks(self):
        assert AES(bytes(16)).ctr_keystream(bytes(16), 0) == b""

    def test_bad_counter_length(self):
        with pytest.raises(CryptoError):
            AES(bytes(16)).ctr_keystream(bytes(8), 1)


class TestRoundTripProperties:
    @given(st.binary(min_size=16, max_size=16), st.sampled_from([16, 24, 32]))
    @settings(max_examples=30, deadline=None)
    def test_decrypt_inverts_encrypt(self, block, key_size):
        aes = AES(bytes(key_size))
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    @given(st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_different_keys_differ(self, block):
        a = AES(b"\x00" * 16).encrypt_block(block)
        b = AES(b"\x01" * 16).encrypt_block(block)
        assert a != b
