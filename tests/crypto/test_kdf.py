"""HKDF tests against RFC 5869 test vectors (SHA-256 cases)."""

import pytest

from repro.crypto.kdf import (
    derive_secret,
    hkdf_expand,
    hkdf_expand_label,
    hkdf_extract,
    hmac_sha256,
    transcript_hash,
)
from repro.errors import CryptoError


class TestRfc5869Vectors:
    def test_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_case_2_long_inputs(self):
        ikm = bytes(range(0x00, 0x50))
        salt = bytes(range(0x60, 0xB0))
        info = bytes(range(0xB0, 0x100))
        prk = hkdf_extract(salt, ikm)
        okm = hkdf_expand(prk, info, 82)
        assert okm.hex() == (
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87"
        )

    def test_case_3_empty_salt_and_info(self):
        ikm = bytes.fromhex("0b" * 22)
        prk = hkdf_extract(b"", ikm)
        assert prk.hex() == (
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04"
        )
        okm = hkdf_expand(prk, b"", 42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )


class TestExpandLimits:
    def test_maximum_length_enforced(self):
        with pytest.raises(CryptoError):
            hkdf_expand(bytes(32), b"", 255 * 32 + 1)

    def test_exact_multiple_of_hash(self):
        out = hkdf_expand(bytes(32), b"info", 64)
        assert len(out) == 64


class TestExpandLabel:
    def test_length_is_respected(self):
        out = hkdf_expand_label(bytes(32), "key", b"", 16)
        assert len(out) == 16

    def test_labels_separate_domains(self):
        secret = bytes(32)
        assert hkdf_expand_label(secret, "key", b"", 16) != hkdf_expand_label(
            secret, "iv", b"", 16
        )

    def test_context_changes_output(self):
        secret = bytes(32)
        a = hkdf_expand_label(secret, "key", b"ctx1", 16)
        b = hkdf_expand_label(secret, "key", b"ctx2", 16)
        assert a != b

    def test_overlong_label_rejected(self):
        with pytest.raises(CryptoError):
            hkdf_expand_label(bytes(32), "x" * 300, b"", 16)

    def test_rfc8446_style_derivation_deterministic(self):
        th = transcript_hash(b"hello")
        assert derive_secret(bytes(32), "c hs traffic", th) == derive_secret(
            bytes(32), "c hs traffic", th
        )


class TestHelpers:
    def test_hmac_matches_stdlib(self):
        import hashlib
        import hmac

        key, msg = b"key", b"message"
        assert hmac_sha256(key, msg) == hmac.new(key, msg, hashlib.sha256).digest()

    def test_transcript_hash_concatenates(self):
        assert transcript_hash(b"ab", b"c") == transcript_hash(b"a", b"bc")
        assert transcript_hash(b"ab") != transcript_hash(b"ba")
