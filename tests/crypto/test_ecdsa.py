"""ECDSA tests: RFC 6979 deterministic vectors, sign/verify, tampering."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ec import N, P256
from repro.crypto.ecdh import EcdhKeyPair
from repro.crypto.ecdsa import EcdsaKeyPair, ecdsa_sign, ecdsa_verify
from repro.errors import AuthenticationError, CryptoError

# RFC 6979 appendix A.2.5, curve P-256 with SHA-256.
RFC6979_KEY = 0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721
RFC6979_SAMPLE_R = 0xEFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716
RFC6979_SAMPLE_S = 0xF7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8
RFC6979_TEST_R = 0xF1ABB023518351CD71D881567B1EA663ED3EFCF6C5132B354F28D3B0B7D38367
RFC6979_TEST_S = 0x019F4113742A2B14BD25926B49C649155F267E60D3814B4C0CC84250E46F0083


class TestRfc6979Vectors:
    def test_sample_message(self):
        sig = ecdsa_sign(RFC6979_KEY, b"sample")
        assert int.from_bytes(sig[:32], "big") == RFC6979_SAMPLE_R
        assert int.from_bytes(sig[32:], "big") == RFC6979_SAMPLE_S

    def test_test_message(self):
        sig = ecdsa_sign(RFC6979_KEY, b"test")
        assert int.from_bytes(sig[:32], "big") == RFC6979_TEST_R
        assert int.from_bytes(sig[32:], "big") == RFC6979_TEST_S

    def test_vectors_verify(self):
        public = P256.scalar_mult(RFC6979_KEY)
        ecdsa_verify(public, b"sample", ecdsa_sign(RFC6979_KEY, b"sample"))


class TestSignVerify:
    def test_roundtrip(self):
        kp = EcdsaKeyPair.generate(random.Random(0))
        sig = kp.sign(b"hello world")
        kp.verify(b"hello world", sig)

    def test_deterministic_signatures(self):
        kp = EcdsaKeyPair.generate(random.Random(0))
        assert kp.sign(b"msg") == kp.sign(b"msg")

    def test_message_tamper_detected(self):
        kp = EcdsaKeyPair.generate(random.Random(0))
        sig = kp.sign(b"original")
        with pytest.raises(AuthenticationError):
            kp.verify(b"OriginaL", sig)

    def test_signature_tamper_detected(self):
        kp = EcdsaKeyPair.generate(random.Random(0))
        sig = bytearray(kp.sign(b"m"))
        sig[10] ^= 1
        with pytest.raises(AuthenticationError):
            kp.verify(b"m", bytes(sig))

    def test_wrong_key_detected(self):
        signer = EcdsaKeyPair.generate(random.Random(0))
        other = EcdsaKeyPair.generate(random.Random(1))
        with pytest.raises(AuthenticationError):
            other.verify(b"m", signer.sign(b"m"))

    def test_bad_signature_length_rejected(self):
        kp = EcdsaKeyPair.generate(random.Random(0))
        with pytest.raises(AuthenticationError):
            kp.verify(b"m", b"short")

    def test_out_of_range_values_rejected(self):
        kp = EcdsaKeyPair.generate(random.Random(0))
        bad = N.to_bytes(32, "big") + (1).to_bytes(32, "big")
        with pytest.raises(AuthenticationError):
            kp.verify(b"m", bad)

    def test_zero_r_rejected(self):
        kp = EcdsaKeyPair.generate(random.Random(0))
        bad = bytes(32) + (1).to_bytes(32, "big")
        with pytest.raises(AuthenticationError):
            kp.verify(b"m", bad)

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_property(self, message):
        kp = EcdsaKeyPair.generate(random.Random(7))
        kp.verify(message, kp.sign(message))


class TestEcdh:
    def test_shared_secret_agreement(self):
        rng = random.Random(3)
        a = EcdhKeyPair.generate(rng)
        b = EcdhKeyPair.generate(rng)
        assert a.shared_secret(b.public) == b.shared_secret(a.public)

    def test_secret_is_32_bytes(self):
        rng = random.Random(3)
        a, b = EcdhKeyPair.generate(rng), EcdhKeyPair.generate(rng)
        assert len(a.shared_secret(b.public)) == 32

    def test_different_pairs_different_secrets(self):
        rng = random.Random(3)
        a, b, c = (EcdhKeyPair.generate(rng) for _ in range(3))
        assert a.shared_secret(b.public) != a.shared_secret(c.public)

    def test_invalid_peer_share_rejected(self):
        from repro.crypto.ec import ECPoint, INFINITY

        a = EcdhKeyPair.generate(random.Random(3))
        with pytest.raises(CryptoError):
            a.shared_secret(INFINITY)
        with pytest.raises(CryptoError):
            a.shared_secret(ECPoint(5, 7))  # off-curve (invalid-curve attack)

    def test_deterministic_from_seed(self):
        assert (
            EcdhKeyPair.generate(random.Random(9)).private
            == EcdhKeyPair.generate(random.Random(9)).private
        )
