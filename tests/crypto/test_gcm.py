"""AES-GCM tests against NIST SP 800-38D / GCM spec test cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.gcm import AesGcm, gf128_mul, _build_tables
from repro.errors import AuthenticationError, CryptoError

# McGrew & Viega GCM spec test cases (AES-128).
KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
IV = bytes.fromhex("cafebabefacedbaddecaf888")
PT4 = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
)
CT4 = bytes.fromhex(
    "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
    "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
)
AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")


class TestKnownVectors:
    def test_case_1_empty(self):
        g = AesGcm(bytes(16))
        out = g.seal(bytes(12), b"")
        assert out.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_case_2_single_zero_block(self):
        g = AesGcm(bytes(16))
        out = g.seal(bytes(12), bytes(16))
        assert out[:16].hex() == "0388dace60b6a392f328c2b971b2fe78"
        assert out[16:].hex() == "ab6e47d42cec13bdf53a67b21257bddf"

    def test_case_3_four_blocks(self):
        g = AesGcm(KEY)
        out = g.seal(IV, PT4)
        assert out[:-16] == CT4
        assert out[-16:].hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"

    def test_case_4_with_aad_partial_block(self):
        g = AesGcm(KEY)
        pt = PT4[:-4]
        out = g.seal(IV, pt, AAD)
        assert out[:-16] == CT4[:-4]
        assert out[-16:].hex() == "5bc94fbc3221a5db94fae95ae7121a47"

    def test_aes256_case(self):
        # GCM spec test case 14: AES-256, zero key/IV/plaintext.
        g = AesGcm(bytes(32))
        out = g.seal(bytes(12), bytes(16))
        assert out[:16].hex() == "cea7403d4d606b6e074ec5d3baf39d18"
        assert out[16:].hex() == "d0d1c8a799996bf0265b98b5d48ab919"


class TestAuthentication:
    def test_roundtrip(self):
        g = AesGcm(KEY)
        out = g.seal(IV, PT4, AAD)
        assert g.open(IV, out, AAD) == PT4

    def test_ciphertext_bit_flip_detected(self):
        g = AesGcm(KEY)
        out = bytearray(g.seal(IV, PT4, AAD))
        out[3] ^= 1
        with pytest.raises(AuthenticationError):
            g.open(IV, bytes(out), AAD)

    def test_tag_bit_flip_detected(self):
        g = AesGcm(KEY)
        out = bytearray(g.seal(IV, PT4))
        out[-1] ^= 0x80
        with pytest.raises(AuthenticationError):
            g.open(IV, bytes(out))

    def test_wrong_aad_detected(self):
        g = AesGcm(KEY)
        out = g.seal(IV, PT4, AAD)
        with pytest.raises(AuthenticationError):
            g.open(IV, out, AAD + b"x")

    def test_wrong_nonce_detected(self):
        g = AesGcm(KEY)
        out = g.seal(IV, PT4)
        wrong = bytes(12)
        with pytest.raises(AuthenticationError):
            g.open(wrong, out)

    def test_wrong_key_detected(self):
        out = AesGcm(KEY).seal(IV, PT4)
        with pytest.raises(AuthenticationError):
            AesGcm(bytes(16)).open(IV, out)

    def test_truncated_ciphertext_rejected(self):
        g = AesGcm(KEY)
        with pytest.raises(AuthenticationError):
            g.open(IV, b"short")

    def test_bad_nonce_size_rejected(self):
        g = AesGcm(KEY)
        with pytest.raises(CryptoError):
            g.seal(bytes(8), b"x")
        with pytest.raises(CryptoError):
            g.open(bytes(16), bytes(20))


class TestGhashInternals:
    def test_tables_match_reference_multiplication(self):
        h = 0x66E94BD4EF8A2C3B884CFA59CA342B2E
        tables = _build_tables(h)
        for x in (1, 0xDEADBEEF, (1 << 127) | 1, (1 << 128) - 1):
            via_tables = 0
            for j in range(16):
                byte = (x >> (120 - 8 * j)) & 0xFF
                via_tables ^= tables[j][byte]
            assert via_tables == gf128_mul(x, h)

    def test_gf_mul_identity(self):
        one = 1 << 127  # the field's multiplicative identity in GCM order
        for v in (1, 12345, (1 << 128) - 1):
            assert gf128_mul(v, one) == v

    def test_gf_mul_commutative(self):
        a, b = 0x123456789ABCDEF, 0xFEDCBA9876543210 << 64
        assert gf128_mul(a, b) == gf128_mul(b, a)


class TestProperties:
    @given(st.binary(min_size=0, max_size=300), st.binary(min_size=0, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_any_sizes(self, plaintext, aad):
        g = AesGcm(bytes(16))
        out = g.seal(IV, plaintext, aad)
        assert len(out) == len(plaintext) + 16
        assert g.open(IV, out, aad) == plaintext

    @given(st.binary(min_size=1, max_size=100), st.integers(min_value=0))
    @settings(max_examples=25, deadline=None)
    def test_any_single_bit_flip_detected(self, plaintext, bit_seed):
        g = AesGcm(bytes(16))
        out = bytearray(g.seal(IV, plaintext))
        bit = bit_seed % (len(out) * 8)
        out[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(AuthenticationError):
            g.open(IV, bytes(out))

    @given(st.binary(min_size=0, max_size=50))
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, plaintext):
        assert AesGcm(KEY).seal(IV, plaintext) == AesGcm(KEY).seal(IV, plaintext)
