"""RSA signature tests."""

import random

import pytest

from repro.crypto.rsa import RsaKeyPair, _is_probable_prime
from repro.errors import AuthenticationError, CryptoError


@pytest.fixture(scope="module")
def key():
    # 1024 bits keeps the suite fast; sign/verify paths are size-agnostic.
    return RsaKeyPair.generate(1024, random.Random(42))


class TestKeyGeneration:
    def test_modulus_size(self, key):
        assert key.n.bit_length() == 1024
        assert key.size_bytes == 128

    def test_public_exponent(self, key):
        assert key.e == 65537

    def test_deterministic_from_seed(self):
        a = RsaKeyPair.generate(512, random.Random(5))
        b = RsaKeyPair.generate(512, random.Random(5))
        assert a.n == b.n

    def test_bad_sizes_rejected(self):
        with pytest.raises(CryptoError):
            RsaKeyPair.generate(100, random.Random(0))
        with pytest.raises(CryptoError):
            RsaKeyPair.generate(1025, random.Random(0))

    def test_private_public_inverse(self, key):
        m = 0x1234567890ABCDEF
        assert pow(pow(m, key.e, key.n), key.d, key.n) == m


class TestMillerRabin:
    def test_small_primes(self):
        rng = random.Random(0)
        for p in (2, 3, 5, 7, 97, 7919):
            assert _is_probable_prime(p, rng)

    def test_small_composites(self):
        rng = random.Random(0)
        for c in (1, 4, 9, 100, 561, 7917):  # 561 is a Carmichael number
            assert not _is_probable_prime(c, rng)


class TestSignVerify:
    def test_roundtrip(self, key):
        sig = key.sign(b"message")
        key.verify(b"message", sig)

    def test_signature_is_modulus_sized(self, key):
        assert len(key.sign(b"m")) == key.size_bytes

    def test_message_tamper_detected(self, key):
        sig = key.sign(b"message")
        with pytest.raises(AuthenticationError):
            key.verify(b"Message", sig)

    def test_signature_tamper_detected(self, key):
        sig = bytearray(key.sign(b"m"))
        sig[0] ^= 1
        with pytest.raises(AuthenticationError):
            key.verify(b"m", bytes(sig))

    def test_wrong_length_rejected(self, key):
        with pytest.raises(AuthenticationError):
            key.verify(b"m", b"short")

    def test_signature_out_of_range_rejected(self, key):
        sig = (key.n + 1).to_bytes(key.size_bytes, "big")
        with pytest.raises(AuthenticationError):
            key.verify(b"m", sig)

    def test_wrong_key_detected(self, key):
        other = RsaKeyPair.generate(1024, random.Random(99))
        with pytest.raises(AuthenticationError):
            other.verify(b"m", key.sign(b"m"))

    def test_public_bytes_roundtrip_via_cert_helper(self, key):
        from repro.crypto.cert import KEY_ALG_RSA, verify_with_key

        verify_with_key(KEY_ALG_RSA, key.public_bytes(), b"m", key.sign(b"m"))
