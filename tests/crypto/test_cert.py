"""Certificate and CA tests."""

import random

import pytest

from repro.crypto.ca import CertificateAuthority
from repro.crypto.cert import (
    KEY_ALG_ECDSA,
    KEY_ALG_RSA,
    Certificate,
    CertificateChain,
)
from repro.crypto.ecdsa import EcdsaKeyPair
from repro.errors import AuthenticationError, ProtocolError


@pytest.fixture()
def rng():
    return random.Random(11)


@pytest.fixture()
def ca(rng):
    return CertificateAuthority("root-ca", rng)


@pytest.fixture()
def leaf_key(rng):
    return EcdsaKeyPair.generate(rng)


class TestIssue:
    def test_root_is_self_signed(self, ca):
        ca.certificate.verify_signed_by(ca.certificate)
        assert ca.certificate.is_ca

    def test_issue_and_verify_leaf(self, ca, leaf_key):
        leaf = ca.issue("server", KEY_ALG_ECDSA, leaf_key.public_bytes())
        leaf.verify_signed_by(ca.certificate)
        assert not leaf.is_ca
        assert leaf.subject == "server"

    def test_serials_unique(self, ca, leaf_key):
        a = ca.issue("a", KEY_ALG_ECDSA, leaf_key.public_bytes())
        b = ca.issue("b", KEY_ALG_ECDSA, leaf_key.public_bytes())
        assert a.serial != b.serial

    def test_rsa_ca(self, rng, leaf_key):
        rsa_ca = CertificateAuthority("rsa-root", rng, key_alg=KEY_ALG_RSA, rsa_bits=1024)
        leaf = rsa_ca.issue("server", KEY_ALG_ECDSA, leaf_key.public_bytes())
        leaf.verify_signed_by(rsa_ca.certificate)


class TestEncoding:
    def test_roundtrip(self, ca, leaf_key):
        leaf = ca.issue("server", KEY_ALG_ECDSA, leaf_key.public_bytes())
        assert Certificate.decode(leaf.encode()) == leaf

    def test_bad_magic_rejected(self):
        with pytest.raises(ProtocolError):
            Certificate.decode(b"NOTACERT" + bytes(40))

    def test_trailing_bytes_rejected(self, ca, leaf_key):
        leaf = ca.issue("server", KEY_ALG_ECDSA, leaf_key.public_bytes())
        with pytest.raises(ProtocolError):
            Certificate.decode(leaf.encode() + b"\x00")

    def test_chain_roundtrip(self, ca, rng, leaf_key):
        inter = ca.new_intermediate("inter")
        leaf = inter.issue("server", KEY_ALG_ECDSA, leaf_key.public_bytes())
        chain = inter.chain_for(leaf)
        decoded = CertificateChain.decode(chain.encode())
        assert decoded == chain


class TestChainVerification:
    def test_direct_chain(self, ca, leaf_key):
        leaf = ca.issue("server", KEY_ALG_ECDSA, leaf_key.public_bytes())
        chain = ca.chain_for(leaf)
        assert len(chain) == 1  # "short certificate chain" configuration
        assert chain.verify([ca.certificate], now=1.0).subject == "server"

    def test_intermediate_chain(self, ca, leaf_key):
        inter = ca.new_intermediate("inter")
        leaf = inter.issue("server", KEY_ALG_ECDSA, leaf_key.public_bytes())
        chain = inter.chain_for(leaf)
        assert len(chain) == 2
        chain.verify([ca.certificate], now=1.0)

    def test_two_intermediates(self, ca, leaf_key):
        i1 = ca.new_intermediate("i1")
        i2 = i1.new_intermediate("i2")
        leaf = i2.issue("server", KEY_ALG_ECDSA, leaf_key.public_bytes())
        chain = i2.chain_for(leaf)
        assert len(chain) == 3
        chain.verify([ca.certificate], now=1.0)

    def test_untrusted_root_rejected(self, ca, rng, leaf_key):
        other = CertificateAuthority("other-root", rng)
        leaf = ca.issue("server", KEY_ALG_ECDSA, leaf_key.public_bytes())
        with pytest.raises(AuthenticationError):
            ca.chain_for(leaf).verify([other.certificate], now=1.0)

    def test_expired_certificate_rejected(self, ca, leaf_key):
        leaf = ca.issue("server", KEY_ALG_ECDSA, leaf_key.public_bytes(), validity=10.0)
        with pytest.raises(AuthenticationError):
            ca.chain_for(leaf).verify([ca.certificate], now=100.0)

    def test_not_yet_valid_rejected(self, ca, leaf_key):
        leaf = ca.issue("server", KEY_ALG_ECDSA, leaf_key.public_bytes(), now=50.0)
        with pytest.raises(AuthenticationError):
            ca.chain_for(leaf).verify([ca.certificate], now=1.0)

    def test_tampered_subject_rejected(self, ca, leaf_key):
        import dataclasses

        leaf = ca.issue("server", KEY_ALG_ECDSA, leaf_key.public_bytes())
        forged = dataclasses.replace(leaf, subject="attacker")
        with pytest.raises(AuthenticationError):
            CertificateChain((forged,)).verify([ca.certificate], now=1.0)

    def test_non_ca_cannot_issue(self, ca, rng, leaf_key):
        # A leaf certificate (is_ca=False) used as an intermediate.
        impostor_key = EcdsaKeyPair.generate(rng)
        impostor = ca.issue("impostor", KEY_ALG_ECDSA, impostor_key.public_bytes())
        forged_leaf = Certificate(
            subject="server",
            issuer="impostor",
            key_alg=KEY_ALG_ECDSA,
            public_key=leaf_key.public_bytes(),
            serial=1,
            not_before=0.0,
            not_after=1e9,
            is_ca=False,
        ).with_signature(impostor_key.sign(b""))
        forged_leaf = forged_leaf.with_signature(
            impostor_key.sign(forged_leaf.tbs_bytes())
        )
        chain = CertificateChain((forged_leaf, impostor))
        with pytest.raises(AuthenticationError):
            chain.verify([ca.certificate], now=1.0)

    def test_empty_chain_rejected(self):
        with pytest.raises(ProtocolError):
            CertificateChain(())
