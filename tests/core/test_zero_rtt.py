"""0-RTT SMT-ticket tests (paper §4.5.2-§4.5.3)."""

import random

import pytest

from repro.core.zero_rtt import (
    ZeroRttClient,
    ZeroRttServer,
    derive_fs_keys,
    derive_smt_keys,
)
from repro.crypto.ca import CertificateAuthority
from repro.crypto.cert import KEY_ALG_ECDSA
from repro.crypto.ecdh import EcdhKeyPair
from repro.crypto.ecdsa import EcdsaKeyPair
from repro.dns.resolver import InternalDns
from repro.errors import AuthenticationError, ProtocolError


@pytest.fixture(scope="module")
def pki():
    rng = random.Random(1)
    ca = CertificateAuthority("dc-root", rng)
    key = EcdsaKeyPair.generate(rng)
    leaf = ca.issue("server", KEY_ALG_ECDSA, key.public_bytes())
    return ca, ca.chain_for(leaf), key


def make_server(pki, lifetime=3600.0):
    _, chain, key = pki
    return ZeroRttServer("server", chain, key, random.Random(7), lifetime=lifetime)


class TestTicket:
    def test_rotate_produces_verifiable_ticket(self, pki):
        ca, _, _ = pki
        server = make_server(pki)
        ticket = server.rotate(now=0.0)
        leaf = ticket.verify([ca.certificate], now=10.0)
        assert leaf.subject == "server"

    def test_expired_ticket_rejected(self, pki):
        ca, _, _ = pki
        server = make_server(pki, lifetime=100.0)
        ticket = server.rotate(now=0.0)
        with pytest.raises(AuthenticationError):
            ticket.verify([ca.certificate], now=200.0)

    def test_tampered_share_rejected(self, pki):
        ca, _, _ = pki
        import dataclasses

        server = make_server(pki)
        ticket = server.rotate(now=0.0)
        rng = random.Random(99)
        evil_share = EcdhKeyPair.generate(rng).public_bytes()
        forged = dataclasses.replace(ticket, long_term_share=evil_share)
        with pytest.raises(AuthenticationError):
            forged.verify([ca.certificate], now=1.0)

    def test_untrusted_signer_rejected(self, pki):
        server = make_server(pki)
        ticket = server.rotate(now=0.0)
        rogue = CertificateAuthority("rogue", random.Random(50))
        with pytest.raises(AuthenticationError):
            ticket.verify([rogue.certificate], now=1.0)

    def test_dns_distribution(self, pki):
        ca, _, _ = pki
        server = make_server(pki)
        dns = InternalDns()
        dns.publish("server.dc.internal", server.rotate(now=0.0), now=0.0, ttl=3600.0)
        ticket = dns.query("server.dc.internal", now=100.0)
        ticket.verify([ca.certificate], now=100.0)

    def test_dns_expiry(self, pki):
        server = make_server(pki)
        dns = InternalDns()
        dns.publish("server.dc.internal", server.rotate(now=0.0), now=0.0, ttl=3600.0)
        with pytest.raises(ProtocolError):
            dns.query("server.dc.internal", now=4000.0)


class TestZeroRttExchange:
    def test_keys_agree(self, pki):
        ca, _, _ = pki
        server = make_server(pki)
        ticket = server.rotate(now=0.0)
        client = ZeroRttClient(ticket, [ca.certificate], now=0.0, rng=random.Random(2))
        share, chlo_random, cw, sw, _ = client.start()
        scw, ssw, _ = server.accept_zero_rtt(share, chlo_random, now=1.0)
        assert cw == scw and sw == ssw

    def test_pregenerated_key_skips_keygen(self, pki):
        ca, _, _ = pki
        server = make_server(pki)
        ticket = server.rotate(now=0.0)
        rng = random.Random(2)
        client = ZeroRttClient(ticket, [ca.certificate], now=0.0, rng=rng)
        _, _, _, _, trace = client.start(pregenerated=EcdhKeyPair.generate(rng))
        assert "C1.1" not in [op.op_id for op in trace]

    def test_chlo_replay_rejected(self, pki):
        # §4.5.3: "servers can record the CHLO random value".
        ca, _, _ = pki
        server = make_server(pki)
        ticket = server.rotate(now=0.0)
        client = ZeroRttClient(ticket, [ca.certificate], now=0.0, rng=random.Random(2))
        share, chlo_random, *_ = client.start()
        server.accept_zero_rtt(share, chlo_random, now=1.0)
        with pytest.raises(AuthenticationError):
            server.accept_zero_rtt(share, chlo_random, now=2.0)
        assert server.replayed_chlos == 1

    def test_expired_long_term_key_rejected(self, pki):
        server = make_server(pki, lifetime=100.0)
        server.rotate(now=0.0)
        with pytest.raises(ProtocolError):
            server.accept_zero_rtt(b"x" * 65, b"r" * 32, now=500.0)

    def test_rotation_invalidates_old_derivations(self, pki):
        ca, _, _ = pki
        server = make_server(pki)
        old_ticket = server.rotate(now=0.0)
        client = ZeroRttClient(old_ticket, [ca.certificate], now=0.0, rng=random.Random(2))
        share, chlo_random, cw, sw, _ = client.start()
        server.rotate(now=1800.0)  # hourly rotation
        scw, _ssw, _ = server.accept_zero_rtt(share, chlo_random, now=1900.0)
        # New long-term share -> different keys: 0-RTT data under the old
        # ticket will not authenticate.
        assert scw != cw

    def test_transcript_binds_keys(self):
        rng = random.Random(3)
        a, b = EcdhKeyPair.generate(rng), EcdhKeyPair.generate(rng)
        shared = a.shared_secret(b.public)
        k1 = derive_smt_keys(shared, a.public_bytes(), b.public_bytes())
        k2 = derive_smt_keys(shared, b.public_bytes(), a.public_bytes())
        assert k1 != k2

    def test_fs_keys_differ_from_smt_keys(self):
        rng = random.Random(3)
        a, b = EcdhKeyPair.generate(rng), EcdhKeyPair.generate(rng)
        shared = a.shared_secret(b.public)
        smt = derive_smt_keys(shared, a.public_bytes(), b.public_bytes())
        fs = derive_fs_keys(shared, a.public_bytes(), b.public_bytes())
        assert smt != fs

    def test_zero_rtt_trace_is_cheap(self, pki):
        # The 0-RTT client trace must not contain certificate verification
        # (done offline) -- that is where §4.5.2's latency win comes from.
        ca, _, _ = pki
        server = make_server(pki)
        ticket = server.rotate(now=0.0)
        client = ZeroRttClient(ticket, [ca.certificate], now=0.0, rng=random.Random(2))
        _, _, _, _, trace = client.start()
        ops = [op.op_id for op in trace]
        assert "C3.2" not in ops and "C4.2" not in ops
