"""SMT end-to-end security and robustness tests over the full stack.

Attacks are injected at the network level (the TLS/TCP threat model,
paper §4.1): replayed messages, bit-flipped records, loss.  These run
through NIC, link, softirq and app layers -- everything real.
"""

import pytest

from repro.core.codec import SmtCodec
from repro.core.session import SmtSession
from repro.errors import AuthenticationError
from repro.homa import HomaConfig, HomaTransport
from repro.homa.socket import HomaSocket
from repro.host.costs import CostModel
from repro.net.headers import PROTO_SMT, PacketType
from repro.net.packet import Packet
from repro.testbed import Testbed
from repro.tls.keyschedule import TrafficKeys


def build(offload=False, **config_kwargs):
    """Two SMT stacks with a pre-shared session (handshake elided)."""
    bed = Testbed.back_to_back()
    config = HomaConfig(**config_kwargs)
    ct = HomaTransport(bed.client, config, proto=PROTO_SMT)
    st = HomaTransport(bed.server, HomaConfig(**config_kwargs), proto=PROTO_SMT)
    client_write = TrafficKeys(key=b"\x01" * 16, iv=b"\x02" * 12)
    server_write = TrafficKeys(key=b"\x03" * 16, iv=b"\x04" * 12)
    costs = CostModel()
    client_session = SmtSession(
        client_write, server_write, offload=offload,
        nic=bed.client.nic if offload else None,
    )
    server_session = SmtSession(
        server_write, client_write, offload=offload,
        nic=bed.server.nic if offload else None,
    )
    client_codec = SmtCodec(client_session, costs, bed.client.nic.num_queues)
    server_codec = SmtCodec(server_session, costs, bed.server.nic.num_queues)
    csock = HomaSocket(ct, bed.client.alloc_port(), codec_provider=lambda a, p: client_codec)
    ssock = HomaSocket(st, 7000, codec_provider=lambda a, p: server_codec)
    return bed, csock, ssock, client_session, server_session


def echo_server(bed, ssock):
    def server():
        t = bed.server.app_thread(0)
        while True:
            rpc = yield from ssock.recv_request(t)
            yield from ssock.reply(t, rpc, rpc.payload)

    return bed.loop.process(server())


def run_calls(bed, csock, payloads, until=5.0):
    results = []

    def client():
        t = bed.client.app_thread(0)
        for payload in payloads:
            results.append(
                (yield from csock.call(t, bed.server.addr, 7000, payload))
            )

    done = bed.loop.process(client())
    bed.loop.run(until=until)
    assert done.triggered, "deadlock"
    if not done.ok:
        raise done.value
    return results


class TestEndToEnd:
    @pytest.mark.parametrize("offload", [False, True])
    @pytest.mark.parametrize("size", [1, 64, 1440, 8192, 70_000])
    def test_echo_sizes(self, offload, size):
        bed, csock, ssock, *_ = build(offload=offload)
        echo_server(bed, ssock)
        payload = bytes(i & 0xFF for i in range(size))
        assert run_calls(bed, csock, [payload]) == [payload]

    @pytest.mark.parametrize("offload", [False, True])
    def test_loss_recovery_with_encryption(self, offload):
        bed, csock, ssock, *_ = build(offload=offload, resend_interval=50e-6)
        state = {"n": 0}

        def loss_fn(packet):
            if packet.transport.pkt_type == PacketType.DATA:
                state["n"] += 1
                return state["n"] in (2, 5)
            return False

        bed.link.set_loss_fn("a", loss_fn)
        echo_server(bed, ssock)
        payload = bytes(i & 0xFF for i in range(20_000))
        assert run_calls(bed, csock, [payload]) == [payload]

    def test_jumbo_mtu(self):
        bed = Testbed.back_to_back(mtu=9000)
        config = HomaConfig()
        ct = HomaTransport(bed.client, config, proto=PROTO_SMT)
        st = HomaTransport(bed.server, HomaConfig(), proto=PROTO_SMT)
        cw = TrafficKeys(key=b"\x01" * 16, iv=b"\x02" * 12)
        sw = TrafficKeys(key=b"\x03" * 16, iv=b"\x04" * 12)
        costs = CostModel()
        cc = SmtCodec(SmtSession(cw, sw), costs)
        sc = SmtCodec(SmtSession(sw, cw), costs)
        csock = HomaSocket(ct, bed.client.alloc_port(), codec_provider=lambda a, p: cc)
        ssock = HomaSocket(st, 7000, codec_provider=lambda a, p: sc)
        echo_server(bed, ssock)
        payload = bytes(20_000)
        assert run_calls(bed, csock, [payload]) == [payload]


class TestReplayDefence:
    def test_replayed_message_dropped_without_decryption(self):
        # An attacker replays all packets of an already-delivered message.
        bed, csock, ssock, _, server_session = build()
        captured = []
        original = bed.link._a_to_b.receiver

        def capture(packet):
            if packet.transport.pkt_type == PacketType.DATA:
                captured.append(packet)
            original(packet)

        bed.link._a_to_b.receiver = capture
        echo_server(bed, ssock)
        run_calls(bed, csock, [b"victim message"])
        # Replay the captured packets wholesale.
        for packet in captured:
            original(packet)
        bed.loop.run(until=bed.loop.now + 1e-3)
        # Dropped by the engine's delivered-ID table or, failing that, the
        # session's uniqueness filter -- in both cases before decryption.
        st = bed.server._transports[PROTO_SMT]
        assert st.spurious_ignored >= 1 or server_session.replays_rejected >= 1
        # Exactly one request was ever delivered to the application.
        assert ssock.pending_requests == 0

    def test_replay_rejected_even_after_state_eviction(self):
        # The Homa-level dedup tables could evict; the session's ID filter
        # is the durable defence.  Simulate by clearing engine tables.
        bed, csock, ssock, _, server_session = build()
        captured = []
        original = bed.link._a_to_b.receiver

        def capture(packet):
            if packet.transport.pkt_type == PacketType.DATA:
                captured.append(packet)
            original(packet)

        bed.link._a_to_b.receiver = capture
        echo_server(bed, ssock)
        run_calls(bed, csock, [b"victim message"])
        st = bed.server._transports[PROTO_SMT]
        st._delivered.clear()  # engine forgot; session must still reject
        for packet in captured:
            original(packet)
        bed.loop.run(until=bed.loop.now + 1e-3)
        assert server_session.replays_rejected >= 1
        assert ssock.pending_requests == 0

    def test_fresh_messages_still_flow_after_replay(self):
        bed, csock, ssock, *_ = build()
        captured = []
        original = bed.link._a_to_b.receiver

        def capture(packet):
            if packet.transport.pkt_type == PacketType.DATA and not captured:
                captured.append(packet)
            original(packet)

        bed.link._a_to_b.receiver = capture
        echo_server(bed, ssock)
        run_calls(bed, csock, [b"one"])
        for packet in captured:
            original(packet)
        assert run_calls(bed, csock, [b"two"], until=bed.loop.now + 1.0) == [b"two"]


class TestInjectionDefence:
    def test_bit_flip_detected_at_receiver(self):
        bed, csock, ssock, *_ = build()
        original = bed.link._a_to_b.receiver
        flipped = [False]

        def tamper(packet):
            if packet.transport.pkt_type == PacketType.DATA and not flipped[0]:
                flipped[0] = True
                mutated = bytearray(packet.payload)
                mutated[10] ^= 1
                packet = Packet(packet.ip, packet.transport, bytes(mutated), packet.meta)
            original(packet)

        bed.link._a_to_b.receiver = tamper
        srv = echo_server(bed, ssock)

        def client():
            t = bed.client.app_thread(0)
            yield from csock.call(t, bed.server.addr, 7000, b"integrity" * 20)

        bed.loop.process(client())
        bed.loop.run(until=10e-3)
        # The server's recv_request raised AuthenticationError.
        assert srv.triggered and not srv.ok
        assert isinstance(srv.value, AuthenticationError)

    def test_forged_message_rejected(self):
        # Attacker injects a complete, well-formed message with an unused
        # msg_id but garbage "ciphertext": transport accepts the packets,
        # decryption kills it (like TLS/TCP after a correct TCP segment).
        from repro.net.headers import IPv4Header, TransportHeader
        from repro.tls.record import encode_record_header

        bed, csock, ssock, *_ = build()
        srv = echo_server(bed, ssock)
        fake_record = encode_record_header(20 + 1 + 16) + bytes(20 + 1 + 16)
        header = TransportHeader(
            src_port=csock.port, dst_port=7000, msg_id=2 ** 40,
            pkt_type=PacketType.DATA, msg_len=len(fake_record), tso_offset=0,
        )
        ip = IPv4Header(bed.client.addr, bed.server.addr, PROTO_SMT,
                        60 + len(fake_record), ipid=9)
        bed.server.nic._rx_handler(Packet(ip, header, fake_record))
        bed.loop.run(until=1e-3)
        assert srv.triggered and not srv.ok
        assert isinstance(srv.value, AuthenticationError)

    def test_message_integrity_replaces_checksum(self):
        # Paper §7: Homa has no checksum with TSO; SMT's AEAD provides
        # integrity intrinsically.  Corrupt a single payload byte as if the
        # wire flipped it: must not be silently accepted.
        bed, csock, ssock, *_ = build()
        original = bed.link._a_to_b.receiver
        corrupted = [False]

        def bitrot(packet):
            if packet.transport.pkt_type == PacketType.DATA and not corrupted[0]:
                corrupted[0] = True
                mutated = bytearray(packet.payload)
                mutated[-1] ^= 0x40
                packet = Packet(packet.ip, packet.transport, bytes(mutated), packet.meta)
            original(packet)

        bed.link._a_to_b.receiver = bitrot
        srv = echo_server(bed, ssock)

        def client():
            t = bed.client.app_thread(0)
            yield from csock.call(t, bed.server.addr, 7000, b"checksummed")

        bed.loop.process(client())
        bed.loop.run(until=10e-3)
        assert srv.triggered and not srv.ok


class TestOffloadCorrectnessUnderConcurrency:
    def test_concurrent_offloaded_messages_all_authenticate(self):
        # Many messages across app threads and NIC queues: per-queue flow
        # contexts + post-time resyncs must keep every record openable.
        bed, csock, ssock, client_session, _ = build(offload=True)
        echo_server(bed, ssock)
        done = []

        def caller(i):
            t = bed.client.app_thread(i % 12)
            payload = bytes([i & 0xFF]) * (100 + 531 * i % 9000)
            response = yield from csock.call(t, bed.server.addr, 7000, payload)
            assert response == payload
            done.append(i)

        for i in range(40):
            bed.loop.process(caller(i))
        bed.loop.run(until=5.0)
        assert sorted(done) == list(range(40))
        # Contexts were genuinely reused via resync (not one per message).
        assert client_session.resyncs_issued > 0

    def test_loss_recovery_with_offload_resync(self):
        bed, csock, ssock, *_ = build(offload=True, resend_interval=50e-6)
        state = {"n": 0}

        def loss_fn(packet):
            if packet.transport.pkt_type == PacketType.DATA:
                state["n"] += 1
                return state["n"] == 1
            return False

        bed.link.set_loss_fn("a", loss_fn)
        echo_server(bed, ssock)
        payload = bytes(i & 0xFF for i in range(30_000))
        assert run_calls(bed, csock, [payload]) == [payload]
