"""SMT codec tests: encryption between message and wire."""

import pytest

from repro.core.codec import SmtCodec
from repro.core.session import SmtSession
from repro.errors import AuthenticationError
from repro.host.costs import CostModel
from repro.tls.keyschedule import TrafficKeys

MSS = 1440


def make_pair(offload=False, nic=None):
    """(sender_codec, receiver_codec) wired like two session endpoints."""
    client_write = TrafficKeys(key=b"\x01" * 16, iv=b"\x02" * 12)
    server_write = TrafficKeys(key=b"\x03" * 16, iv=b"\x04" * 12)
    costs = CostModel()
    sender = SmtCodec(
        SmtSession(client_write, server_write, offload=offload, nic=nic), costs
    )
    receiver = SmtCodec(SmtSession(server_write, client_write), costs)
    return sender, receiver


def wire_of(encoded):
    return b"".join(plan.payload for plan in encoded.plans)


class TestSoftwareRoundTrip:
    @pytest.mark.parametrize("size", [1, 64, 1024, 16384, 100_000])
    def test_roundtrip(self, size):
        sender, receiver = make_pair()
        payload = bytes(i & 0xFF for i in range(size))
        encoded = sender.encode(2, payload, MSS)
        decoded = receiver.decode(2, wire_of(encoded))
        assert decoded.payload == payload

    def test_wire_is_ciphertext(self):
        sender, _ = make_pair()
        payload = b"CONFIDENTIAL" * 50
        encoded = sender.encode(2, payload, MSS)
        assert b"CONFIDENTIAL" not in wire_of(encoded)

    def test_wire_len_matches_plan(self):
        sender, _ = make_pair()
        encoded = sender.encode(2, bytes(50_000), MSS)
        assert sum(p.length for p in encoded.plans) == encoded.wire_len

    def test_tampered_wire_rejected(self):
        sender, receiver = make_pair()
        encoded = sender.encode(2, b"payload" * 100, MSS)
        wire = bytearray(wire_of(encoded))
        wire[30] ^= 1
        with pytest.raises(AuthenticationError):
            receiver.decode(2, bytes(wire))
        assert receiver.auth_failures == 1

    def test_wrong_msg_id_rejected(self):
        # A message decrypted under another ID fails: the composite seqno
        # binds ciphertext to its message identity.
        sender, receiver = make_pair()
        encoded = sender.encode(2, b"hello", MSS)
        with pytest.raises(AuthenticationError):
            receiver.decode(4, wire_of(encoded))

    def test_swapped_records_rejected(self):
        # Order protection within a message: swapping two records makes
        # their positions disagree with their sequence numbers.
        sender, receiver = make_pair()
        payload = bytes(30_000)  # two 16 KB-ish records in one segment
        encoded = sender.encode(2, payload, MSS)
        wire = wire_of(encoded)
        from repro.tls.record import parse_record_header
        from repro.tls.constants import RECORD_HEADER_SIZE

        _t, len0 = parse_record_header(wire)
        r0 = wire[: RECORD_HEADER_SIZE + len0]
        rest = wire[RECORD_HEADER_SIZE + len0 :]
        swapped = rest + r0
        with pytest.raises(AuthenticationError):
            receiver.decode(2, swapped)

    def test_cross_direction_isolation(self):
        # Client-write records cannot be opened with the server-write keys:
        # each direction has its own sequence space and keys (Figure 4).
        sender, _ = make_pair()
        other_sender, _ = make_pair()
        encoded = sender.encode(2, b"data", MSS)
        with pytest.raises(AuthenticationError):
            sender.decode(2, wire_of(encoded))  # sender reads with read keys

    def test_replay_filter_delegates_to_session(self):
        _, receiver = make_pair()
        assert receiver.accept_message(2)
        assert not receiver.accept_message(2)

    def test_reseal_returns_cached_ciphertext(self):
        sender, _ = make_pair()
        encoded = sender.encode(2, bytes(5000), MSS)
        assert sender.reseal_range(encoded, 0) == encoded.plans[0].payload


class TestOffloadPath:
    def _nic(self):
        from repro.testbed import Testbed

        return Testbed.back_to_back().client.nic

    def test_encode_leaves_plaintext_with_descriptors(self):
        nic = self._nic()
        sender, _ = make_pair(offload=True, nic=nic)
        payload = b"VISIBLE-UNTIL-NIC" * 10
        encoded = sender.encode(2, payload, MSS)
        assert encoded.plans[0].tls is not None
        assert b"VISIBLE-UNTIL-NIC" in encoded.plans[0].payload

    def test_nic_queue_pinned(self):
        nic = self._nic()
        sender, _ = make_pair(offload=True, nic=nic)
        encoded = sender.encode(2, bytes(200_000), MSS)
        assert encoded.nic_queue is not None
        assert all(
            p.tls.context_key == sender.session.context_key(encoded.nic_queue)
            for p in encoded.plans
        )

    def test_nic_encryption_matches_software(self):
        # The offloaded ciphertext must byte-match the software path.
        nic = self._nic()
        hw_sender, receiver = make_pair(offload=True, nic=nic)
        sw_sender, _ = make_pair()
        payload = bytes(i & 0xFF for i in range(40_000))
        hw_encoded = hw_sender.encode(2, payload, MSS)
        sw_encoded = sw_sender.encode(2, payload, MSS)
        hw_wire = b""
        for plan in hw_encoded.plans:
            hw_sender.segment_pre_descriptors(plan, hw_encoded.nic_queue)
            for pre in []:
                pass
            hw_sender.session.ensure_context(hw_encoded.nic_queue)
            hw_wire += nic.flow_contexts.encrypt_segment(plan.payload, plan.tls)
        assert hw_wire == wire_of(sw_encoded)
        assert receiver.decode(2, hw_wire).payload == payload

    def test_reseal_range_regenerates_identical_bytes(self):
        # Offload retransmit falls back to software sealing; ciphertext
        # must be identical (same key, same nonce).
        nic = self._nic()
        hw_sender, _ = make_pair(offload=True, nic=nic)
        sw_sender, _ = make_pair()
        payload = bytes(20_000)
        hw_encoded = hw_sender.encode(2, payload, MSS)
        sw_encoded = sw_sender.encode(2, payload, MSS)
        assert hw_sender.reseal_range(hw_encoded, 0) == sw_encoded.plans[0].payload

    def test_offload_charges_no_crypto_cpu(self):
        nic = self._nic()
        hw_sender, _ = make_pair(offload=True, nic=nic)
        sw_sender, _ = make_pair()
        payload = bytes(16384)
        hw_cost = hw_sender.encode(2, payload, MSS).tx_cpu_cost
        sw_cost = sw_sender.encode(4, payload, MSS).tx_cpu_cost
        assert hw_cost < sw_cost
