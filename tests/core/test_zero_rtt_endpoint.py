"""0-RTT over the wire: endpoint-level integration (paper §4.5.2)."""

import random

import pytest

from repro.core.endpoint import SmtEndpoint
from repro.core.zero_rtt import ZeroRttServer
from repro.crypto.ca import CertificateAuthority
from repro.crypto.cert import KEY_ALG_ECDSA
from repro.crypto.ecdsa import EcdsaKeyPair
from repro.dns.resolver import InternalDns
from repro.testbed import Testbed

PORT = 7000


@pytest.fixture(scope="module")
def pki():
    rng = random.Random(1)
    ca = CertificateAuthority("dc-root", rng)
    key = EcdsaKeyPair.generate(rng)
    leaf = ca.issue("server", KEY_ALG_ECDSA, key.public_bytes())
    return ca, ca.chain_for(leaf), key


def build(pki, forward_secrecy, seed=10):
    ca, chain, key = pki
    bed = Testbed.back_to_back()
    cep = SmtEndpoint(bed.client, bed.client.alloc_port())
    sep = SmtEndpoint(bed.server, PORT)
    zserver = ZeroRttServer("server", chain, key, random.Random(seed))
    dns = InternalDns()
    dns.publish("server", zserver.rotate(now=0.0), now=0.0)
    sep.serve_zero_rtt(bed.server.app_thread(0), zserver)

    def echo():
        thread = bed.server.app_thread(1)
        while True:
            rpc = yield from sep.socket.recv_request(thread)
            yield from sep.socket.reply(thread, rpc, rpc.payload)

    bed.loop.process(echo())
    return bed, cep, sep, dns, zserver, (ca.certificate,)


def connect_and_call(bed, cep, dns, roots, forward_secrecy, payload=b"zrtt"):
    out = {}

    def client():
        thread = bed.client.app_thread(0)
        ticket = dns.query("server", now=bed.loop.now)
        out["stats"] = yield from cep.connect_zero_rtt(
            thread, bed.server.addr, PORT, ticket, roots,
            forward_secrecy=forward_secrecy, rng=random.Random(42),
        )
        out["reply"] = yield from cep.socket.call(
            thread, bed.server.addr, PORT, payload
        )

    done = bed.loop.process(client())
    bed.loop.run(until=1.0)
    assert done.triggered, "deadlock"
    if not done.ok:
        raise done.value
    return out


class TestZeroRttOverWire:
    @pytest.mark.parametrize("fs", [False, True])
    def test_data_flows_after_zero_rtt(self, pki, fs):
        bed, cep, sep, dns, zserver, roots = build(pki, fs)
        out = connect_and_call(bed, cep, dns, roots, fs)
        assert out["reply"] == b"zrtt"

    def test_keys_ready_before_any_round_trip(self, pki):
        bed, cep, sep, dns, zserver, roots = build(pki, False)
        out = connect_and_call(bed, cep, dns, roots, False)
        # keys_ready happens before a wire RTT could complete (sub-RTT).
        assert out["stats"].setup_latency < 500e-6
        assert out["stats"].setup_latency < (
            out["stats"].finished_at - out["stats"].started_at
        )

    def test_fs_upgrade_rekeys_both_sessions(self, pki):
        bed, cep, sep, dns, zserver, roots = build(pki, True)
        connect_and_call(bed, cep, dns, roots, True)
        assert cep.session_for(bed.server.addr, PORT).rekeys == 1
        assert sep.session_for(bed.client.addr, cep.port).rekeys == 1

    def test_no_fs_keeps_smt_key(self, pki):
        bed, cep, sep, dns, zserver, roots = build(pki, False)
        connect_and_call(bed, cep, dns, roots, False)
        assert cep.session_for(bed.server.addr, PORT).rekeys == 0

    def test_fs_faster_than_nothing_but_slower_than_no_fs(self, pki):
        bed, cep, sep, dns, zserver, roots = build(pki, False)
        no_fs = connect_and_call(bed, cep, dns, roots, False)
        bed2, cep2, sep2, dns2, zserver2, roots2 = build(pki, True, seed=11)
        with_fs = connect_and_call(bed2, cep2, dns2, roots2, True)
        assert (with_fs["stats"].finished_at - with_fs["stats"].started_at) > (
            no_fs["stats"].finished_at - no_fs["stats"].started_at
        )

    def test_wire_confidentiality_of_zero_rtt_data(self, pki):
        bed, cep, sep, dns, zserver, roots = build(pki, False)
        sniffed = []
        original = bed.link._a_to_b.receiver

        def sniffer(packet):
            sniffed.append(bytes(packet.payload))
            original(packet)

        bed.link._a_to_b.receiver = sniffer
        connect_and_call(bed, cep, dns, roots, False, payload=b"SECRET-0RTT-DATA")
        assert b"SECRET-0RTT" not in b"".join(sniffed)

    def test_replayed_chlo_rejected_at_server(self, pki):
        bed, cep, sep, dns, zserver, roots = build(pki, False)
        connect_and_call(bed, cep, dns, roots, False)
        assert zserver.replayed_chlos == 0
        # A second connect with the same client rng replays the CHLO random.
        cep2 = SmtEndpoint(bed.client, bed.client.alloc_port())

        def replayer():
            thread = bed.client.app_thread(1)
            ticket = dns.query("server", now=bed.loop.now)
            yield from cep2.connect_zero_rtt(
                thread, bed.server.addr, PORT, ticket, roots,
                forward_secrecy=False, rng=random.Random(42),  # same randomness
            )

        done = bed.loop.process(replayer())
        bed.loop.run(until=bed.loop.now + 0.5)
        # The server-side responder raised AuthenticationError.
        assert zserver.replayed_chlos >= 1
        assert not done.triggered or not done.ok
