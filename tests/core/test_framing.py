"""Offload-friendly framing tests (paper §4.3, Figure 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.framing import RECORD_OVERHEAD, plan_message, segment_capacity
from repro.errors import ProtocolError
from repro.tls.constants import MAX_RECORD_PAYLOAD


class TestSegmentCapacity:
    def test_whole_packets(self):
        cap = segment_capacity(1440)
        assert cap % 1440 == 0
        assert cap <= 65536 - 60

    def test_jumbo_mtu(self):
        cap = segment_capacity(8940)
        assert cap % 8940 == 0

    def test_tiny_mss_rejected(self):
        with pytest.raises(ProtocolError):
            segment_capacity(RECORD_OVERHEAD)


class TestPlanInvariants:
    def _check(self, payload_len, mss=1440, max_record=MAX_RECORD_PAYLOAD):
        plan = plan_message(payload_len, mss, max_record)
        cap = segment_capacity(mss)
        # 1. plaintext fully covered, in order, no overlap
        expected_offset = 0
        indices = []
        for seg in plan.segments:
            for rec in seg.records:
                assert rec.plaintext_offset == expected_offset
                expected_offset += rec.plaintext_len
                assert 1 <= rec.plaintext_len <= max_record
                indices.append(rec.index)
        assert expected_offset == payload_len
        # 2. record indices are 0..n-1 (the composite low bits)
        assert indices == list(range(len(indices)))
        # 3. records align inside segments, never straddling
        for seg in plan.segments:
            pos = 0
            for rec in seg.records:
                assert rec.segment_offset == pos
                pos += rec.wire_len
            assert pos == seg.wire_len
            assert seg.wire_len <= cap
        # 4. uniform segment boundaries: all but last exactly cap
        for seg in plan.segments[:-1]:
            assert seg.wire_len == cap
        # 5. TSO offsets contiguous
        expected = 0
        for seg in plan.segments:
            assert seg.tso_offset == expected
            expected += seg.wire_len
        assert plan.wire_len == expected
        return plan

    def test_single_small_record(self):
        plan = self._check(64)
        assert plan.num_records == 1
        assert plan.wire_len == 64 + RECORD_OVERHEAD

    def test_one_full_record(self):
        self._check(MAX_RECORD_PAYLOAD)

    def test_multi_record_single_segment(self):
        self._check(40_000)

    def test_multi_segment(self):
        plan = self._check(200_000)
        assert len(plan.segments) > 1

    def test_paper_figure3_one_record_three_packets(self):
        # Figure 3's example: one TLS record split into 3 packets.
        plan = self._check(3 * 1380 - RECORD_OVERHEAD)
        assert plan.num_records == 1

    def test_empty_message_rejected(self):
        with pytest.raises(ProtocolError):
            plan_message(0, 1440)

    def test_small_records_config(self):
        plan = self._check(10_000, max_record=1000)
        assert plan.num_records == 10

    def test_jumbo_mtu_plan(self):
        self._check(100_000, mss=8940)

    @given(
        st.integers(min_value=1, max_value=2_000_000),
        st.sampled_from([536, 1440, 8940]),
        st.sampled_from([1000, 4096, MAX_RECORD_PAYLOAD]),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_property(self, payload_len, mss, max_record):
        self._check(payload_len, mss, max_record)

    def test_record_overhead_constant(self):
        # 5-byte header + 1 content-type byte + 16-byte tag (Figure 3 notes
        # "TLS record header is actually 5 B and the authentication tag is
        # 16 B").
        assert RECORD_OVERHEAD == 5 + 1 + 16
