"""SMT endpoint tests: session establishment and encrypted data flow."""

import random

import pytest

from repro.core.endpoint import SmtEndpoint
from repro.crypto.ca import CertificateAuthority
from repro.crypto.cert import KEY_ALG_ECDSA
from repro.crypto.ecdsa import EcdsaKeyPair
from repro.errors import ProtocolError
from repro.testbed import Testbed
from repro.tls.handshake import HandshakeConfig, ServerCredentials


@pytest.fixture(scope="module")
def pki():
    rng = random.Random(1)
    ca = CertificateAuthority("dc-root", rng)
    key = EcdsaKeyPair.generate(rng)
    leaf = ca.issue("server", KEY_ALG_ECDSA, key.public_bytes())
    return ca, ServerCredentials(chain=ca.chain_for(leaf), signing_key=key)


def build(pki, offload=False):
    ca, creds = pki
    bed = Testbed.back_to_back()
    cep = SmtEndpoint(bed.client, bed.client.alloc_port(), offload=offload)
    sep = SmtEndpoint(bed.server, 7000, offload=offload)
    roots = (ca.certificate,)
    sep.listen(
        bed.server.app_thread(0),
        creds,
        lambda: HandshakeConfig(rng=random.Random(3), trust_roots=roots),
        issue_tickets=1,
    )
    return bed, cep, sep, roots


def connect(bed, cep, roots, seed=4):
    stats = {}

    def body():
        t = bed.client.app_thread(0)
        stats["hs"] = yield from cep.connect(
            t, bed.server.addr, 7000,
            HandshakeConfig(rng=random.Random(seed), server_name="server",
                            trust_roots=roots),
        )

    done = bed.loop.process(body())
    bed.loop.run(until=1.0)
    assert done.triggered and done.ok, getattr(done, "value", None)
    return stats["hs"]


class TestEstablishment:
    def test_connect_creates_sessions_on_both_ends(self, pki):
        bed, cep, sep, roots = build(pki)
        connect(bed, cep, roots)
        assert cep.session_for(bed.server.addr, 7000) is not None
        assert sep.session_for(bed.client.addr, cep.port) is not None

    def test_setup_latency_includes_rtt_and_crypto(self, pki):
        bed, cep, sep, roots = build(pki)
        hs = connect(bed, cep, roots)
        # Dominated by Table 2 crypto (~1.6 ms serial) plus transport RTT.
        assert 1e-3 < hs.setup_latency < 3e-3

    def test_tickets_delivered(self, pki):
        bed, cep, sep, roots = build(pki)
        connect(bed, cep, roots)
        assert len(cep.tickets[(bed.server.addr, 7000)]) == 1

    def test_data_before_handshake_rejected(self, pki):
        bed, cep, sep, roots = build(pki)

        def body():
            t = bed.client.app_thread(0)
            yield from cep.socket.call(t, bed.server.addr, 7000, b"early")

        done = bed.loop.process(body())
        bed.loop.run(until=1.0)
        assert not done.ok and isinstance(done.value, ProtocolError)


class TestEncryptedData:
    @pytest.mark.parametrize("offload", [False, True])
    def test_echo_roundtrip(self, pki, offload):
        bed, cep, sep, roots = build(pki, offload=offload)

        def server():
            t = bed.server.app_thread(1)
            while True:
                rpc = yield from sep.socket.recv_request(t)
                yield from sep.socket.reply(t, rpc, rpc.payload)

        bed.loop.process(server())
        connect(bed, cep, roots)
        result = {}

        def client():
            t = bed.client.app_thread(0)
            result["r"] = yield from cep.socket.call(
                t, bed.server.addr, 7000, b"ping" * 100
            )

        done = bed.loop.process(client())
        bed.loop.run(until=bed.loop.now + 1.0)
        assert done.ok and result["r"] == b"ping" * 100

    @pytest.mark.parametrize("offload", [False, True])
    def test_wire_confidentiality(self, pki, offload):
        bed, cep, sep, roots = build(pki, offload=offload)

        def server():
            t = bed.server.app_thread(1)
            while True:
                rpc = yield from sep.socket.recv_request(t)
                yield from sep.socket.reply(t, rpc, b"ok")

        bed.loop.process(server())
        connect(bed, cep, roots)
        sniffed = []
        original = bed.link._a_to_b.receiver

        def sniffer(packet):
            sniffed.append(bytes(packet.payload))
            original(packet)

        bed.link._a_to_b.receiver = sniffer

        def client():
            t = bed.client.app_thread(0)
            yield from cep.socket.call(
                t, bed.server.addr, 7000, b"TOP-SECRET-PAYLOAD" * 10
            )

        done = bed.loop.process(client())
        bed.loop.run(until=bed.loop.now + 1.0)
        assert done.ok
        assert b"TOP-SECRET" not in b"".join(sniffed)

    def test_plaintext_transport_metadata_visible(self, pki):
        # §4.3/§7: message ID / length / offsets stay plaintext so the
        # network can do message-granularity operations.
        bed, cep, sep, roots = build(pki)

        def server():
            t = bed.server.app_thread(1)
            while True:
                rpc = yield from sep.socket.recv_request(t)
                yield from sep.socket.reply(t, rpc, b"ok")

        bed.loop.process(server())
        connect(bed, cep, roots)
        seen = []
        original = bed.link._a_to_b.receiver

        def watcher(packet):
            from repro.net.headers import PacketType

            if packet.transport.pkt_type == PacketType.DATA:
                seen.append((packet.transport.msg_id, packet.transport.msg_len,
                             packet.transport.tso_offset))
            original(packet)

        bed.link._a_to_b.receiver = watcher

        def client():
            t = bed.client.app_thread(0)
            yield from cep.socket.call(t, bed.server.addr, 7000, bytes(5000))

        done = bed.loop.process(client())
        bed.loop.run(until=bed.loop.now + 1.0)
        assert done.ok
        data_packets = [s for s in seen if s[1] > 0]
        assert data_packets, "no data packets observed"
        # All packets of the message advertise the same id and wire length.
        ids = {s[0] for s in data_packets}
        assert len(ids) == 1

    def test_multiple_clients_one_server_socket(self, pki):
        ca, creds = pki
        roots = (ca.certificate,)
        bed = Testbed.back_to_back()
        sep = SmtEndpoint(bed.server, 7000)
        sep.listen(
            bed.server.app_thread(0), creds,
            lambda: HandshakeConfig(rng=random.Random(3), trust_roots=roots),
        )

        def server():
            t = bed.server.app_thread(1)
            while True:
                rpc = yield from sep.socket.recv_request(t)
                yield from sep.socket.reply(t, rpc, rpc.payload)

        bed.loop.process(server())
        results = {}
        endpoints = [
            SmtEndpoint(bed.client, bed.client.alloc_port()) for _ in range(3)
        ]

        # All three client endpoints share one host but have their own
        # sessions to the single server socket.
        def one(i, ep):
            t = bed.client.app_thread(i)
            yield from ep.connect(
                t, bed.server.addr, 7000,
                HandshakeConfig(rng=random.Random(10 + i), server_name="server",
                                trust_roots=roots),
            )
            results[i] = yield from ep.socket.call(
                t, bed.server.addr, 7000, bytes([i]) * 64
            )

        procs = [bed.loop.process(one(i, ep)) for i, ep in enumerate(endpoints)]
        bed.loop.run(until=2.0)
        assert all(p.ok for p in procs)
        assert results == {0: b"\x00" * 64, 1: b"\x01" * 64, 2: b"\x02" * 64}
