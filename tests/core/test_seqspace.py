"""Composite record sequence number tests (paper §4.4.1, Figures 4-5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.seqspace import BitAllocation, tradeoff_curve
from repro.errors import ProtocolError
from repro.units import GB, KB, MB


class TestDefaultAllocation:
    def test_default_split_is_48_16(self):
        alloc = BitAllocation()
        assert alloc.msg_id_bits == 48
        assert alloc.record_index_bits == 16

    def test_paper_capacity_claims(self):
        # §4.4.1: 48-bit IDs leave 16 bits -> "up to 65K individual TLS
        # records, supporting message sizes up to approximately 98 MB even
        # with 1.5 KB (small) TLS records, and approximately 1 GB with
        # 16 KB one".
        alloc = BitAllocation(48)
        assert alloc.max_records_per_message == 65536
        small = alloc.max_message_size(record_payload=1536)
        big = alloc.max_message_size()
        assert 90 * MB < small < 110 * MB
        assert 0.9 * GB < big < 1.1 * GB

    def test_homa_default_message_fits_comfortably(self):
        # Homa's default max message is 1 MB (§4.4.1).
        assert BitAllocation(48).max_message_size(1536) > 1 * MB


class TestEncodeDecode:
    def test_low_bits_hold_record_index(self):
        # The NIC's self-incrementing counter must keep working: adjacent
        # records of one message differ by exactly 1 in the composite.
        alloc = BitAllocation(48)
        a = alloc.encode(7, 0)
        b = alloc.encode(7, 1)
        assert b == a + 1

    def test_messages_never_collide(self):
        alloc = BitAllocation(48)
        last_of_msg1 = alloc.encode(1, alloc.max_records_per_message - 1)
        first_of_msg2 = alloc.encode(2, 0)
        assert first_of_msg2 == last_of_msg1 + 1

    def test_decode_inverts_encode(self):
        alloc = BitAllocation(40)
        seq = alloc.encode(123456, 789)
        decoded = alloc.decode(seq)
        assert decoded.msg_id == 123456 and decoded.record_index == 789

    def test_msg_id_overflow_rejected(self):
        alloc = BitAllocation(8)
        with pytest.raises(ProtocolError):
            alloc.encode(256, 0)

    def test_record_index_overflow_rejected(self):
        alloc = BitAllocation(60)
        with pytest.raises(ProtocolError):
            alloc.encode(0, 16)

    def test_seqno_out_of_range_rejected(self):
        with pytest.raises(ProtocolError):
            BitAllocation().decode(1 << 64)

    def test_invalid_bit_splits_rejected(self):
        for bad in (0, 64, -3):
            with pytest.raises(ProtocolError):
                BitAllocation(bad)

    @given(
        st.integers(min_value=1, max_value=63),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_bijection_property(self, bits, data):
        alloc = BitAllocation(bits)
        msg_id = data.draw(st.integers(0, alloc.max_message_ids - 1))
        index = data.draw(st.integers(0, alloc.max_records_per_message - 1))
        seq = alloc.encode(msg_id, index)
        assert seq < (1 << 64)
        decoded = alloc.decode(seq)
        assert (decoded.msg_id, decoded.record_index) == (msg_id, index)


class TestTradeoffCurve:
    def test_figure5_shape(self):
        # More ID bits -> more messages, smaller max message size.
        rows = tradeoff_curve(record_payload=16 * KB)
        ids = [r[1] for r in rows]
        sizes = [r[2] for r in rows]
        assert ids == sorted(ids)
        assert sizes == sorted(sizes, reverse=True)

    def test_curve_endpoints(self):
        rows = tradeoff_curve(record_payload=16 * KB)
        assert rows[0] == (1, 2, (1 << 63) * 16 * KB)
        assert rows[-1][0] == 63 and rows[-1][1] == 1 << 63

    def test_product_is_constant(self):
        # IDs x records is always 2^64: the bits just move.
        for bits, ids, size in tradeoff_curve(record_payload=1):
            assert ids * size == 1 << 64
