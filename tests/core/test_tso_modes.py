"""Integration tests across TSO modes (paper §7 "Segmentation")."""

import pytest

from repro.bench.runner import build_rpc_harness
from repro.core.framing import plan_message, segment_capacity
from repro.nic.tso import TsoMode


def run_echo(system, size, tso_mode):
    harness = build_rpc_harness(system, tso_mode=tso_mode)
    bed = harness.bed
    call = harness.call_factory(0)
    out = {}

    def body():
        out["resp"] = yield from call(bytes(size), size)

    done = bed.loop.process(body())
    bed.loop.run(until=5.0)
    assert done.triggered, f"{system}/{tso_mode} deadlocked"
    if not done.ok:
        raise done.value
    assert len(out["resp"]) == size
    return bed


class TestModes:
    @pytest.mark.parametrize("mode", list(TsoMode))
    @pytest.mark.parametrize("system", ["homa", "smt-sw"])
    def test_multi_packet_roundtrip(self, mode, system):
        run_echo(system, 20_000, mode)

    @pytest.mark.parametrize("mode", list(TsoMode))
    def test_large_message(self, mode):
        run_echo("smt-sw", 100_000, mode)

    def test_off_mode_sends_single_packet_segments(self):
        bed = run_echo("smt-sw", 10_000, TsoMode.OFF)
        nic = bed.client.nic
        # Every segment carried exactly one packet.
        assert nic.segments_sent == nic.packets_sent

    def test_pairs_mode_segments_bounded(self):
        bed = run_echo("smt-sw", 10_000, TsoMode.PAIRS)
        nic = bed.client.nic
        assert nic.packets_sent <= 2 * nic.segments_sent

    def test_full_mode_uses_few_segments(self):
        bed = run_echo("smt-sw", 60_000, TsoMode.FULL)
        nic = bed.client.nic
        assert nic.segments_sent < nic.packets_sent / 10


class TestCapacities:
    def test_pairs_capacity(self):
        assert segment_capacity(1440, packets_per_segment=2) == 2880

    def test_off_capacity(self):
        assert segment_capacity(1440, packets_per_segment=1) == 1440

    def test_records_fit_small_segments(self):
        # §7: with two-packet TSO, records shrink to fit the segments.
        plan = plan_message(50_000, 1440, packets_per_segment=2)
        cap = segment_capacity(1440, 2)
        for seg in plan.segments[:-1]:
            assert seg.wire_len == cap
        assert all(
            rec.wire_len <= cap for seg in plan.segments for rec in seg.records
        )
