"""Length concealment tests (paper §6.1).

With padding enabled, the plaintext msg_len field reveals only the padded
bucket; the true length is recovered at decryption.
"""

import pytest

from repro.core.codec import SmtCodec
from repro.core.session import SmtSession
from repro.errors import ProtocolError
from repro.host.costs import CostModel
from repro.tls.keyschedule import TrafficKeys

MSS = 1440


def make_pair(pad_to=0):
    cw = TrafficKeys(key=b"\x01" * 16, iv=b"\x02" * 12)
    sw = TrafficKeys(key=b"\x03" * 16, iv=b"\x04" * 12)
    costs = CostModel()
    sender = SmtCodec(SmtSession(cw, sw), costs, pad_to=pad_to)
    receiver = SmtCodec(SmtSession(sw, cw), costs, pad_to=pad_to)
    return sender, receiver


def wire_of(encoded):
    return b"".join(p.payload for p in encoded.plans)


class TestPadding:
    @pytest.mark.parametrize("size", [1, 17, 100, 256, 1000, 5000])
    def test_roundtrip(self, size):
        sender, receiver = make_pair(pad_to=256)
        payload = bytes(i & 0xFF for i in range(size))
        encoded = sender.encode(2, payload, MSS)
        assert receiver.decode(2, wire_of(encoded)).payload == payload

    def test_sizes_within_bucket_indistinguishable(self):
        # The concealment property: any two messages in the same bucket
        # produce identical wire lengths and msg_len fields.
        sender, _ = make_pair(pad_to=256)
        wire_lens = {
            sender.encode(2 * (i + 1), bytes(size), MSS).wire_len
            for i, size in enumerate((1, 50, 100, 200, 251))
        }
        assert len(wire_lens) == 1

    def test_bucket_boundaries_differ(self):
        sender, _ = make_pair(pad_to=256)
        small = sender.encode(2, bytes(100), MSS).wire_len
        large = sender.encode(4, bytes(300), MSS).wire_len
        assert large > small

    def test_wire_length_is_bucket_plus_overhead(self):
        from repro.core.framing import RECORD_OVERHEAD

        sender, _ = make_pair(pad_to=512)
        encoded = sender.encode(2, bytes(10), MSS)
        # 4-byte length prefix + 10 bytes -> one 512-byte bucket + 1 record.
        assert encoded.wire_len == 512 + RECORD_OVERHEAD

    def test_no_padding_passthrough(self):
        sender, receiver = make_pair(pad_to=0)
        encoded = sender.encode(2, b"exact", MSS)
        assert receiver.decode(2, wire_of(encoded)).payload == b"exact"

    def test_mismatched_padding_config_fails_safely(self):
        # A receiver without padding configured sees the framed payload.
        sender, _ = make_pair(pad_to=256)
        _, plain_receiver = make_pair(pad_to=0)
        encoded = sender.encode(2, b"hello", MSS)
        decoded = plain_receiver.decode(2, wire_of(encoded))
        # It gets the padded frame, not a crash, and not the bare payload.
        assert len(decoded.payload) == 256
        assert decoded.payload[4:9] == b"hello"

    def test_corrupt_length_field_rejected(self):
        sender, receiver = make_pair(pad_to=256)
        # Craft a padding frame whose length field exceeds the content.
        bogus = (1000).to_bytes(4, "big") + bytes(60)
        with pytest.raises(ProtocolError):
            receiver._unpad(bogus)

    def test_padding_with_offload_layout(self):
        from repro.testbed import Testbed

        bed = Testbed.back_to_back()
        cw = TrafficKeys(key=b"\x01" * 16, iv=b"\x02" * 12)
        sw = TrafficKeys(key=b"\x03" * 16, iv=b"\x04" * 12)
        sender = SmtCodec(
            SmtSession(cw, sw, offload=True, nic=bed.client.nic),
            bed.client.costs, pad_to=128,
        )
        receiver = SmtCodec(SmtSession(sw, cw), bed.client.costs, pad_to=128)
        encoded = sender.encode(2, b"offloaded+padded", MSS)
        sender.session.ensure_context(encoded.nic_queue)
        wire = b"".join(
            bed.client.nic.flow_contexts.encrypt_segment(p.payload, p.tls)
            for p in encoded.plans
        )
        assert receiver.decode(2, wire).payload == b"offloaded+padded"
