"""Multi-host incast over the switch fabric, with and without trimming."""

from repro.core.codec import SmtCodec
from repro.core.session import SmtSession
from repro.homa import HomaConfig, HomaSocket, HomaTransport
from repro.net.headers import PROTO_HOMA, PROTO_SMT
from repro.testbed import StarTestbed
from repro.tls.keyschedule import TrafficKeys
from repro.units import KB


INCAST_CONFIG = dict(
    # Small unscheduled window so the receiver's grants pace the fan-in
    # (blasting 8 x 60 KB of unscheduled data into one switch buffer is
    # congestion collapse for any transport).
    unscheduled_bytes=8 * KB,
    grant_window=8 * KB,
    resend_interval=300e-6,
    max_resends=100,
)
# Four-packet TSO segments: grants and retransmissions then operate at a
# granularity the switch buffer can absorb (NDP runs per-packet; full
# 64 KB segments defeat receiver-driven pacing under heavy fan-in).
INCAST_PPS = 4


def build_star(num_clients, trimming, encrypted=False, buffer_bytes=64 * 1024):
    bed = StarTestbed.star(num_clients, trimming=trimming, buffer_bytes=buffer_bytes)
    proto = PROTO_SMT if encrypted else PROTO_HOMA
    st = HomaTransport(bed.server, HomaConfig(**INCAST_CONFIG), proto=proto)
    server_codecs = {}
    if encrypted:
        def server_provider(addr, port):
            if (addr, port) not in server_codecs:
                ck = TrafficKeys(key=addr.to_bytes(16, "big"), iv=b"\x01" * 12)
                sk = TrafficKeys(key=(addr + 1).to_bytes(16, "big"), iv=b"\x02" * 12)
                server_codecs[(addr, port)] = SmtCodec(
                    SmtSession(sk, ck, aead_kind="fast"), bed.server.costs,
                    packets_per_segment=INCAST_PPS,
                )
            return server_codecs[(addr, port)]

        ssock = HomaSocket(st, 7000, codec_provider=server_provider)
    else:
        from repro.homa.codec import PlainCodec

        plain = PlainCodec(proto, packets_per_segment=INCAST_PPS)
        ssock = HomaSocket(st, 7000, codec_provider=lambda a, p: plain)

    def echo():
        thread = bed.server.app_thread(0)
        while True:
            rpc = yield from ssock.recv_request(thread)
            yield from ssock.reply(thread, rpc, b"ok")

    bed.loop.process(echo())

    client_socks = []
    for i, client in enumerate(bed.clients):
        ct = HomaTransport(client, HomaConfig(**INCAST_CONFIG), proto=proto)
        if encrypted:
            ck = TrafficKeys(key=client.addr.to_bytes(16, "big"), iv=b"\x01" * 12)
            sk = TrafficKeys(key=(client.addr + 1).to_bytes(16, "big"), iv=b"\x02" * 12)
            codec = SmtCodec(SmtSession(ck, sk, aead_kind="fast"), client.costs,
                             packets_per_segment=INCAST_PPS)
            sock = HomaSocket(ct, client.alloc_port(),
                              codec_provider=lambda a, p, c=codec: c)
        else:
            from repro.homa.codec import PlainCodec

            plain = PlainCodec(proto, packets_per_segment=INCAST_PPS)
            sock = HomaSocket(ct, client.alloc_port(),
                              codec_provider=lambda a, p, c=plain: c)
        client_socks.append(sock)
    return bed, ssock, client_socks


def run_incast(bed, client_socks, message_size, until=50e-3):
    done_flags = []

    def sender(i, sock):
        thread = bed.clients[i].app_thread(0)
        response = yield from sock.call(
            thread, bed.server.addr, 7000, bytes([i & 0xFF]) * message_size
        )
        assert response == b"ok"
        done_flags.append(i)

    procs = [bed.loop.process(sender(i, s)) for i, s in enumerate(client_socks)]
    bed.loop.run(until=until)
    for p in procs:
        if p.triggered and not p.ok:
            raise p.value
    return done_flags, procs


class TestIncastPlain:
    def test_small_fanin_all_complete(self):
        bed, ssock, socks = build_star(4, trimming=False)
        done, procs = run_incast(bed, socks, 2000)
        assert sorted(done) == [0, 1, 2, 3]

    def test_heavy_incast_with_drops_recovers(self):
        # 8 senders x 60 KB into a 32 KB buffer: drops are guaranteed;
        # the RESEND machinery must complete every message.
        bed, ssock, socks = build_star(8, trimming=False)
        done, procs = run_incast(bed, socks, 60 * KB, until=0.5)
        assert sorted(done) == list(range(8))
        assert bed.fabric.switch.stats(bed.server.addr)["dropped"] > 0

    def test_heavy_incast_with_trimming_recovers(self):
        bed, ssock, socks = build_star(8, trimming=True)
        done, procs = run_incast(bed, socks, 60 * KB, until=0.5)
        assert sorted(done) == list(range(8))
        assert bed.fabric.switch.stats(bed.server.addr)["trimmed"] > 0

    def test_trimming_triggers_fast_resends(self):
        bed, ssock, socks = build_star(8, trimming=True)
        run_incast(bed, socks, 60 * KB, until=0.5)
        st = bed.server._transports[PROTO_HOMA]
        assert st.resend_requests > 0

    def test_trimming_finishes_faster_than_drops(self):
        # Trimming converts losses into immediate resend requests instead
        # of timeout-driven discovery.
        def completion_time(trimming):
            bed, ssock, socks = build_star(8, trimming=trimming)
            done_at = {}

            def sender(i, sock):
                thread = bed.clients[i].app_thread(0)
                yield from sock.call(thread, bed.server.addr, 7000, bytes(60 * KB))
                done_at[i] = bed.loop.now

            for i, s in enumerate(socks):
                bed.loop.process(sender(i, s))
            bed.loop.run(until=1.0)
            assert len(done_at) == 8
            return max(done_at.values())

        assert completion_time(True) < completion_time(False)


class TestIncastEncrypted:
    def test_smt_incast_with_trimming(self):
        # Trimmed SMT packets still carry plaintext transport metadata
        # (paper §7): recovery works identically under encryption.
        bed, ssock, socks = build_star(6, trimming=True, encrypted=True)
        done, procs = run_incast(bed, socks, 40 * KB, until=0.2)
        assert sorted(done) == list(range(6))

    def test_smt_incast_payload_intact(self):
        bed, ssock, socks = build_star(4, trimming=True, encrypted=True)
        done, procs = run_incast(bed, socks, 20 * KB, until=0.2)
        assert sorted(done) == [0, 1, 2, 3]
