"""SMT session tests: replay filter, rekey, flow-context shadow."""

import pytest

from repro.core.seqspace import BitAllocation
from repro.core.session import REPLAY_WINDOW_IDS, SmtSession
from repro.errors import ProtocolError
from repro.tls.keyschedule import TrafficKeys


def make_session(offload=False, nic=None):
    return SmtSession(
        write_keys=TrafficKeys(key=b"\x01" * 16, iv=b"\x02" * 12),
        read_keys=TrafficKeys(key=b"\x03" * 16, iv=b"\x04" * 12),
        offload=offload,
        nic=nic,
    )


class TestReplayFilter:
    def test_first_sighting_accepted(self):
        session = make_session()
        assert session.accept_message(2)

    def test_second_sighting_rejected(self):
        session = make_session()
        session.accept_message(2)
        assert not session.accept_message(2)
        assert session.replays_rejected == 1

    def test_out_of_order_ids_accepted_once_each(self):
        session = make_session()
        for msg_id in (10, 4, 8, 2, 6):
            assert session.accept_message(msg_id)
        for msg_id in (10, 4, 8, 2, 6):
            assert not session.accept_message(msg_id)

    def test_window_prunes_but_rejects_ancient_ids(self):
        session = make_session()
        for msg_id in range(0, 2 * REPLAY_WINDOW_IDS + 10):
            session.accept_message(msg_id)
        # An ID far below the watermark is rejected outright.
        assert not session.accept_message(1)
        # Memory stays bounded.
        assert len(session._seen_ids) <= 2 * REPLAY_WINDOW_IDS + 1

    def test_directions_independent(self):
        # Each endpoint filters only its *inbound* (peer-write) space;
        # two sessions never share filters.
        a, b = make_session(), make_session()
        assert a.accept_message(2) and b.accept_message(2)


class TestRekey:
    def test_rekey_replaces_protections(self):
        session = make_session()
        old = session.write_protection
        session.rekey(
            TrafficKeys(key=b"\x05" * 16, iv=b"\x06" * 12),
            TrafficKeys(key=b"\x07" * 16, iv=b"\x08" * 12),
        )
        assert session.write_protection is not old
        assert session.rekeys == 1

    def test_rekey_resets_message_id_space(self):
        # §4.5.2: resumption "updates cryptographic keys and thus resets
        # the message ID space".
        session = make_session()
        session.accept_message(2)
        session.rekey(
            TrafficKeys(key=b"\x05" * 16, iv=b"\x06" * 12),
            TrafficKeys(key=b"\x07" * 16, iv=b"\x08" * 12),
        )
        assert session.accept_message(2)  # same ID valid again

    def test_ciphertext_changes_after_rekey(self):
        session = make_session()
        before = session.write_protection.seal(b"x", seqno=1)
        session.rekey(
            TrafficKeys(key=b"\x05" * 16, iv=b"\x06" * 12),
            TrafficKeys(key=b"\x07" * 16, iv=b"\x08" * 12),
        )
        after = session.write_protection.seal(b"x", seqno=1)
        assert before != after


class TestFlowContextShadow:
    def _nic(self):
        from repro.testbed import Testbed

        return Testbed.back_to_back().client.nic

    def test_offload_requires_nic(self):
        with pytest.raises(ProtocolError):
            make_session(offload=True, nic=None)

    def test_context_installed_lazily(self):
        nic = self._nic()
        session = make_session(offload=True, nic=nic)
        assert not nic.flow_contexts.has_context(session.context_key(0))
        session.ensure_context(0)
        assert nic.flow_contexts.has_context(session.context_key(0))

    def test_fresh_context_needs_no_resync(self):
        nic = self._nic()
        session = make_session(offload=True, nic=nic)
        alloc = BitAllocation()
        pres = session.pre_descriptors(0, alloc.encode(2, 0), 3)
        assert pres == []  # hardware adopts the first seqno it sees

    def test_consecutive_message_needs_resync(self):
        # Context reuse across messages is "simply performing a resync
        # operation" (§4.4.2).
        nic = self._nic()
        session = make_session(offload=True, nic=nic)
        alloc = BitAllocation()
        session.pre_descriptors(0, alloc.encode(2, 0), 2)
        pres = session.pre_descriptors(0, alloc.encode(4, 0), 1)
        assert len(pres) == 1
        assert pres[0].seqno == alloc.encode(4, 0)
        assert session.resyncs_issued == 1

    def test_continuation_of_same_message_needs_no_resync(self):
        # Later segments of one message continue the counter.
        nic = self._nic()
        session = make_session(offload=True, nic=nic)
        alloc = BitAllocation()
        session.pre_descriptors(0, alloc.encode(2, 0), 4)
        pres = session.pre_descriptors(0, alloc.encode(2, 4), 4)
        assert pres == []

    def test_queues_have_independent_contexts(self):
        # §4.4.2: "messages sent to different queues do not [share]".
        nic = self._nic()
        session = make_session(offload=True, nic=nic)
        alloc = BitAllocation()
        session.pre_descriptors(0, alloc.encode(2, 0), 2)
        pres_q1 = session.pre_descriptors(1, alloc.encode(4, 0), 2)
        assert pres_q1 == []  # fresh context on queue 1, no resync
        assert session.context_key(0) != session.context_key(1)
