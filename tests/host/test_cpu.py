"""Softirq core and app thread tests."""

import pytest

from repro.host.cpu import AppThread, SoftirqCore
from repro.sim.event_loop import EventLoop
from repro.sim.resources import Resource


class TestSoftirqCore:
    def test_serial_execution(self):
        loop = EventLoop()
        core = SoftirqCore(loop)
        times = []
        core.submit(1.0, lambda: times.append(loop.now))
        core.submit(1.0, lambda: times.append(loop.now))
        loop.run()
        assert times == [1.0, 2.0]

    def test_fifo_order(self):
        loop = EventLoop()
        core = SoftirqCore(loop)
        order = []
        for i in range(5):
            core.submit(0.1, lambda i=i: order.append(i))
        loop.run()
        assert order == [0, 1, 2, 3, 4]

    def test_extra_cost_from_handler(self):
        loop = EventLoop()
        core = SoftirqCore(loop)
        core.submit(1.0, lambda: 2.0)  # handler reports 2s of extra work
        done = []
        core.submit(0.5, lambda: done.append(loop.now))
        loop.run()
        assert done == [3.5]
        assert core.busy_time == pytest.approx(3.5)

    def test_head_of_line_blocking(self):
        # The paper's CPU-core HoLB: a small item queued behind a large one
        # waits for the whole large item.
        loop = EventLoop()
        core = SoftirqCore(loop)
        finished = {}
        core.submit(10.0, lambda: finished.update(large=loop.now) and None)
        core.submit(0.1, lambda: finished.update(small=loop.now) and None)
        loop.run()
        assert finished["small"] == pytest.approx(10.1)

    def test_merge_batches_consecutive_same_key(self):
        loop = EventLoop()
        core = SoftirqCore(loop)
        seen = []
        for i in range(4):
            core.submit(1.0, lambda i=i: seen.append(i), merge_key="flow", merge_cost=0.1)
        loop.run()
        # One full cost + three merged costs, all handlers run.
        assert seen == [0, 1, 2, 3]
        assert core.busy_time == pytest.approx(1.3)
        assert core.batches == 1

    def test_merge_stops_at_different_key(self):
        loop = EventLoop()
        core = SoftirqCore(loop)
        core.submit(1.0, lambda: None, merge_key="a", merge_cost=0.1)
        core.submit(1.0, lambda: None, merge_key="b", merge_cost=0.1)
        core.submit(1.0, lambda: None, merge_key="b", merge_cost=0.1)
        loop.run()
        assert core.batches == 2
        assert core.busy_time == pytest.approx(2.1)

    def test_no_batching_when_unloaded(self):
        # Items arriving after processing started do not retroactively merge.
        loop = EventLoop()
        core = SoftirqCore(loop)
        core.submit(1.0, lambda: None, merge_key="k", merge_cost=0.1)
        loop.call_later(5.0, lambda: core.submit(1.0, lambda: None, merge_key="k", merge_cost=0.1))
        loop.run()
        assert core.batches == 2
        assert core.busy_time == pytest.approx(2.0)

    def test_utilization(self):
        loop = EventLoop()
        core = SoftirqCore(loop)
        core.submit(2.0, lambda: None)
        loop.run()
        assert core.utilization(elapsed=4.0) == pytest.approx(0.5)


class TestAppThread:
    def test_work_charges_core_time(self):
        loop = EventLoop()
        core = Resource(loop, 1, "app0")
        thread = AppThread(loop, core)

        def body():
            yield from thread.work(2.0)
            return loop.now

        assert loop.run_process(body()) == pytest.approx(2.0)
        assert core.busy_time == pytest.approx(2.0)

    def test_threads_sharing_core_serialize(self):
        loop = EventLoop()
        core = Resource(loop, 1, "app0")
        t1, t2 = AppThread(loop, core), AppThread(loop, core)
        ends = []

        def body(t):
            yield from t.work(1.0)
            ends.append(loop.now)

        loop.process(body(t1))
        loop.process(body(t2))
        loop.run()
        assert ends == [1.0, 2.0]

    def test_zero_work_is_free(self):
        loop = EventLoop()
        thread = AppThread(loop, Resource(loop))

        def body():
            yield from thread.work(0.0)
            yield loop.timeout(0)
            return loop.now

        assert loop.run_process(body()) == 0.0
