"""Host-level tests: steering, registration, accounting."""

import pytest

from repro.errors import SimulationError
from repro.host.host import Host
from repro.net.headers import IPv4Header, PROTO_HOMA, PROTO_SMT, TransportHeader
from repro.net.packet import Packet
from repro.sim.event_loop import EventLoop
from repro.testbed import Testbed


def make_host():
    return Host(EventLoop(), "h", 42, num_app_cores=4, num_softirq_cores=4)


def make_packet(src_port, proto=PROTO_SMT):
    ip = IPv4Header(7, 42, proto, 100)
    return Packet(ip, TransportHeader(src_port, 20, 1))


class TestSteering:
    def test_same_flow_same_core(self):
        host = make_host()
        a = host.softirq_core_for(make_packet(100))
        b = host.softirq_core_for(make_packet(100))
        assert a is b

    def test_flows_spread_across_cores(self):
        host = make_host()
        cores = {id(host.softirq_core_for(make_packet(p))) for p in range(200)}
        assert len(cores) == 4  # all cores get some flow

    def test_flow_key_helper_matches_packet_steering(self):
        host = make_host()
        packet = make_packet(100)
        via_packet = host.softirq_core_for(packet)
        via_key = host.softirq_core_for_flow(7, 100, 20, PROTO_SMT)
        assert via_packet is via_key


class TestRegistration:
    def test_duplicate_transport_rejected(self):
        host = make_host()
        host.register_transport(PROTO_HOMA, object())
        with pytest.raises(SimulationError):
            host.register_transport(PROTO_HOMA, object())

    def test_unknown_proto_counted_as_drop(self):
        bed = Testbed.back_to_back()
        bed.client.nic.post(
            0,
            __import__("repro.nic.tso", fromlist=["TsoSegment"]).TsoSegment(
                bed.client.addr, bed.server.addr, 99,
                TransportHeader(1, 2, 3), b"x", 1440,
            ),
        )
        bed.run()
        assert bed.server.rx_dropped == 1

    def test_port_allocation_unique(self):
        host = make_host()
        ports = {host.alloc_port() for _ in range(100)}
        assert len(ports) == 100


class TestAccounting:
    def test_cpu_busy_time_groups(self):
        host = make_host()
        host.softirq_cores[0].submit(2.0, lambda: None)
        host.loop.run()
        busy = host.cpu_busy_time()
        assert busy["softirq"] == pytest.approx(2.0)
        assert busy["app"] == 0.0

    def test_utilization(self):
        host = make_host()
        host.softirq_cores[0].submit(4.0, lambda: None)
        host.loop.run()
        # 4 seconds busy over 8 cores * 4 seconds elapsed.
        assert host.utilization(elapsed=4.0) == pytest.approx(4.0 / 32.0)
