"""Property suites for the ``repro.lb`` layer (30 seeds each).

- consistent-hash remap bound: removing one replica moves *only* the
  keys that replica owned -- everyone else keeps their assignment --
  and the removal that matters (the least-loaded owner) moves at most
  ceil(K/N) keys;
- power-of-two-choices max load never exceeds uniform-random's max load
  on the same arrival sequence, and beats it in aggregate;
- drain completeness: every session leaves the drained replica, busy
  sessions are waited out, and no session is lost or duplicated;
- health hysteresis no-flap invariant: a strictly flapping probe (no
  two consecutive equal outcomes) produces zero transitions at 2/2
  thresholds, and the checker's verdicts match a reference streak model
  on arbitrary random schedules.
"""

from __future__ import annotations

import random
from math import ceil

import pytest

from repro.dns.resolver import InternalDns
from repro.lb import (
    ConnectionDrainer,
    ConsistentHashBalancer,
    FrontendSession,
    HealthChecker,
    LeastLoadedBalancer,
    RandomBalancer,
    ServiceFrontend,
    ServiceRegistry,
)
from repro.sim.event_loop import EventLoop

SEEDS = list(range(30))


class TestConsistentHashRemapBound:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_removal_only_moves_the_removed_replicas_keys(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 8)
        k = rng.randint(40, 120)
        replicas = tuple(f"r{seed}-{i}" for i in range(n))
        keys = [f"key-{seed}-{j}" for j in range(k)]
        ring = ConsistentHashBalancer(vnodes=64)
        before = {key: ring.pick(key, replicas) for key in keys}
        removed = rng.choice(replicas)
        survivors = tuple(r for r in replicas if r != removed)
        after = {key: ring.pick(key, survivors) for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        # Exactly the removed replica's keys move, nobody else's.
        assert set(moved) == {key for key in keys if before[key] == removed}
        for key in moved:
            assert after[key] != removed

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lightest_owner_removal_respects_k_over_n(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 8)
        k = rng.randint(40, 120)
        replicas = tuple(f"r{seed}-{i}" for i in range(n))
        keys = [f"key-{seed}-{j}" for j in range(k)]
        ring = ConsistentHashBalancer(vnodes=64)
        before = {key: ring.pick(key, replicas) for key in keys}
        owned = {r: sum(1 for key in keys if before[key] == r) for r in replicas}
        # Pigeonhole: some replica owns <= K/N keys; removing it moves
        # at most ceil(K/N) -- the classic consistent-hashing bound.
        lightest = min(replicas, key=lambda r: owned[r])
        survivors = tuple(r for r in replicas if r != lightest)
        moved = sum(
            1 for key in keys if ring.pick(key, survivors) != before[key]
        )
        assert moved == owned[lightest]
        assert moved <= ceil(k / n)


class TestPowerOfTwoChoices:
    @staticmethod
    def _max_load(balancer, n, arrivals, seed_keys):
        replicas = tuple(range(n))
        loads = {r: 0 for r in replicas}
        for key in seed_keys:
            pick = balancer.pick(key, replicas, loads)
            loads[pick] += 1  # balls stay: long-held sessions
        return max(loads.values())

    @pytest.mark.parametrize("seed", SEEDS)
    def test_p2c_max_load_never_worse_than_random(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 12)
        arrivals = rng.randint(100, 300)
        keys = [rng.random() for _ in range(arrivals)]
        p2c = self._max_load(LeastLoadedBalancer(seed=seed), n, arrivals, keys)
        uni = self._max_load(RandomBalancer(seed=seed), n, arrivals, keys)
        assert p2c <= uni, f"seed {seed}: p2c {p2c} > random {uni}"
        # Near-perfect balance: within one ball of the ceiling average.
        assert p2c <= ceil(arrivals / n) + 1, f"seed {seed}"

    def test_p2c_strictly_beats_random_in_aggregate(self):
        total_p2c = total_uni = 0
        for seed in SEEDS:
            rng = random.Random(seed)
            n, arrivals = 8, 200
            keys = [rng.random() for _ in range(arrivals)]
            total_p2c += self._max_load(
                LeastLoadedBalancer(seed=seed), n, arrivals, keys
            )
            total_uni += self._max_load(
                RandomBalancer(seed=seed), n, arrivals, keys
            )
        assert total_p2c < total_uni


def _stub_frontend(loop, rids):
    """A ServiceFrontend with bookkeeping only (no crypto, no fabric).

    Drain and migrate never touch the handshake machinery, so the drain
    properties run against hand-planted sessions.
    """
    registry = ServiceRegistry(loop, InternalDns(), "drain-prop", ttl=1.0)
    for rid in rids:
        registry.register(rid)

    class _Stub:
        def __init__(self, rid):
            self.rid = rid

    fe = ServiceFrontend(
        loop, registry, {rid: _Stub(rid) for rid in rids},
        ConsistentHashBalancer(), tickets=None, trust_roots=(),
    )
    return fe


class TestDrainCompleteness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_session_moves_and_none_is_lost(self, seed):
        rng = random.Random(seed)
        loop = EventLoop()
        rids = tuple(f"r{i}" for i in range(rng.randint(2, 5)))
        fe = _stub_frontend(loop, rids)
        num_sessions = rng.randint(5, 25)
        busy: list[FrontendSession] = []
        for sid in range(num_sessions):
            rid = rng.choice(rids)
            s = FrontendSession(
                sid=sid, key=f"k{sid}", replica=rid, mode="0rtt", opened_at=0.0
            )
            fe.sessions.append(s)
            fe._by_rid[rid].add(sid)
            if rng.random() < 0.4:
                s.inflight = 1  # mid-RPC when the drain starts
                busy.append(s)
        # Busy sessions finish at seed-derived times; the drainer must
        # wait them out, not skip them.
        for s in busy:
            loop.timer_later(
                rng.uniform(10e-6, 200e-6), lambda s=s: setattr(s, "inflight", 0)
            )
        target = rng.choice(rids)
        pre = len(fe.sessions_on(target))
        drainer = ConnectionDrainer(loop, fe, poll_interval=15e-6)
        out = {}

        def go():
            out["moved"] = yield from drainer.drain(target)

        done = loop.process(go())
        loop.run(until=1.0)
        assert done.triggered and done.ok, f"seed {seed}: drain stuck"
        assert out["moved"] == pre, f"seed {seed}"
        assert fe.sessions_on(target) == [], f"seed {seed}"
        # Conservation: every session still exists exactly once.
        assert sum(1 for s in fe.sessions if not s.closed) == num_sessions
        placed = sum(len(v) for v in fe._by_rid.values())
        assert placed == num_sessions, f"seed {seed}: lost or duplicated"
        for s in fe.sessions:
            assert s.replica != target, f"seed {seed}: session left behind"

    def test_drain_with_no_target_replica_raises(self):
        loop = EventLoop()
        fe = _stub_frontend(loop, ("only",))
        s = FrontendSession(sid=0, key="k", replica="only", mode="0rtt",
                            opened_at=0.0)
        fe.sessions.append(s)
        fe._by_rid["only"].add(0)
        drainer = ConnectionDrainer(loop, fe, poll_interval=5e-6)

        def go():
            yield from drainer.drain("only", max_polls=10)

        done = loop.process(go())
        loop.run(until=1.0)
        assert done.triggered
        assert not done.ok  # nowhere to migrate: drain reports stuck


def _reference_transitions(schedule, down_misses, up_successes):
    """Streak reference model for HealthChecker (no dwell window)."""
    up, ok_streak, fail_streak, transitions = True, 0, 0, 0
    for ok in schedule:
        if ok:
            ok_streak += 1
            fail_streak = 0
            if not up and ok_streak >= up_successes:
                up, transitions = True, transitions + 1
                ok_streak = fail_streak = 0
        else:
            fail_streak += 1
            ok_streak = 0
            if up and fail_streak >= down_misses:
                up, transitions = False, transitions + 1
                ok_streak = fail_streak = 0
    return transitions


def _run_checker(schedule, down_misses, up_successes, min_hold=0.0):
    loop = EventLoop()
    registry = ServiceRegistry(loop, InternalDns(), "hc-prop", ttl=1.0)
    registry.register("r0")
    checker = HealthChecker(
        loop, registry, interval=10e-6,
        down_misses=down_misses, up_successes=up_successes, min_hold=min_hold,
    )
    it = iter(schedule)
    checker.watch("r0", lambda: next(it))
    checker.start()
    loop.run(until=len(schedule) * 10e-6 + 1e-9)
    return checker


class TestHealthHysteresis:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_flapping_probe_never_flips_at_2_2(self, seed):
        rng = random.Random(seed)
        # Strict flapping: no two consecutive equal outcomes (random
        # phase and length), so neither streak ever reaches 2.
        start = rng.random() < 0.5
        length = rng.randint(20, 200)
        schedule = [(start if i % 2 == 0 else not start) for i in range(length)]
        checker = _run_checker(schedule, down_misses=2, up_successes=2)
        assert checker.transitions == 0, f"seed {seed}"
        assert checker.registry.live() == ("r0",), f"seed {seed}"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_checker_matches_streak_reference_model(self, seed):
        rng = random.Random(seed)
        schedule = [rng.random() < 0.5 for _ in range(rng.randint(30, 150))]
        down = rng.randint(1, 3)
        up = rng.randint(1, 3)
        checker = _run_checker(schedule, down_misses=down, up_successes=up)
        assert checker.transitions == _reference_transitions(
            schedule, down, up
        ), f"seed {seed}"

    @pytest.mark.parametrize("seed", SEEDS[:10])
    def test_dwell_window_only_suppresses(self, seed):
        rng = random.Random(seed)
        schedule = [rng.random() < 0.5 for _ in range(100)]
        free = _run_checker(schedule, 1, 1)
        held = _run_checker(schedule, 1, 1, min_hold=300e-6)
        assert held.transitions <= free.transitions, f"seed {seed}"
        # Any reduction in committed transitions must be visible as
        # suppressed flips -- the dwell window never silently drops a
        # verdict without accounting for it.
        if held.transitions < free.transitions:
            assert held.suppressed_flaps > 0, f"seed {seed}"
