"""Unit tests for the lb layer's bookkeeping paths.

The property suite (:mod:`tests.lb.test_properties`), fault fuzz and
golden traces cover the end-to-end behaviours; these tests pin the
smaller contracts -- registry membership/publish mechanics, frontend
session accounting, drain-with-deregister, and the skewed key
distribution the frontend bench loads with.
"""

import random

import pytest

from repro.dns.resolver import InternalDns
from repro.errors import ProtocolError, ReproError
from repro.lb import (
    ConnectionDrainer,
    ConsistentHashBalancer,
    FrontendSession,
    LeastLoadedBalancer,
    ServiceFrontend,
    ServiceRegistry,
    record_name,
)
from repro.load.frontend import SkewedKeys
from repro.sim.event_loop import EventLoop


def make_registry(loop, rids=("r0", "r1"), service="svc.unit"):
    registry = ServiceRegistry(loop, InternalDns(), service, ttl=1.0)
    for rid in rids:
        registry.register(rid)
    return registry


class TestServiceRegistry:
    def test_publish_carries_versioned_membership(self):
        loop = EventLoop()
        registry = make_registry(loop)
        record = registry.dns.query(record_name("svc.unit"), loop.now)
        assert record.replicas == ("r0", "r1")
        version = record.version
        registry.set_health("r1", False)
        record = registry.dns.query(record_name("svc.unit"), loop.now)
        assert record.replicas == ("r0",)
        assert record.version > version

    def test_register_is_idempotent(self):
        loop = EventLoop()
        registry = make_registry(loop)
        publishes = registry.publishes
        registry.register("r0")
        assert registry.members() == ("r0", "r1")
        assert registry.publishes == publishes

    def test_deregister_removes_and_republishes(self):
        loop = EventLoop()
        registry = make_registry(loop)
        registry.deregister("r0")
        assert registry.members() == ("r1",)
        assert registry.live() == ("r1",)
        record = registry.dns.query(record_name("svc.unit"), loop.now)
        assert record.replicas == ("r1",)
        # Unknown rid: a no-op, not an error.
        registry.deregister("ghost")
        assert registry.members() == ("r1",)

    def test_set_health_returns_whether_membership_changed(self):
        loop = EventLoop()
        registry = make_registry(loop)
        assert registry.set_health("r0", False) is True
        assert registry.set_health("r0", False) is False  # already down
        assert registry.set_health("ghost", False) is False
        assert registry.is_healthy("r0") is False
        assert registry.is_healthy("r1") is True

    def test_render_log_lists_membership_events(self):
        loop = EventLoop()
        registry = make_registry(loop)
        registry.set_health("r1", False)
        text = registry.render_log()
        assert "register" in text and "down" in text and "r1" in text

    def test_periodic_republish_refreshes_ttl(self):
        loop = EventLoop()
        registry = make_registry(loop)
        registry.start()
        before = registry.publishes
        loop.run(until=registry.ttl * 3)
        registry.stop()
        assert registry.publishes > before
        # The record survived well past its TTL thanks to the refresh.
        assert registry.dns.query(
            record_name("svc.unit"), loop.now
        ).replicas == ("r0", "r1")


def make_frontend(loop, rids=("r0", "r1", "r2")):
    registry = make_registry(loop, rids)

    class _Stub:
        def __init__(self, rid):
            self.rid = rid

    return ServiceFrontend(
        loop, registry, {rid: _Stub(rid) for rid in rids},
        ConsistentHashBalancer(), tickets=None, trust_roots=(),
    )


class TestFrontendBookkeeping:
    def test_note_start_done_tracks_outstanding(self):
        loop = EventLoop()
        fe = make_frontend(loop)
        s = FrontendSession(sid=0, key="k", replica="r1", mode="0rtt",
                            opened_at=0.0)
        fe.sessions.append(s)
        fe._by_rid["r1"].add(0)
        fe.note_start(s)
        fe.note_start(s)
        assert fe.outstanding["r1"] == 2 and s.inflight == 2 and not s.idle
        fe.note_done(s)
        fe.note_done(s)
        assert fe.outstanding["r1"] == 0 and s.idle

    def test_close_session_releases_the_slot(self):
        loop = EventLoop()
        fe = make_frontend(loop)
        s = FrontendSession(sid=0, key="k", replica="r1", mode="1rtt",
                            opened_at=0.0)
        fe.sessions.append(s)
        fe._by_rid["r1"].add(0)
        fe.close_session(s)
        assert s.closed
        assert fe.sessions_on("r1") == []

    def test_route_skips_draining_and_excluded(self):
        loop = EventLoop()
        fe = make_frontend(loop)
        fe.mark_draining("r0")
        picks = {fe.route(f"key-{k}", exclude=("r1",)) for k in range(20)}
        assert picks == {"r2"}
        fe.clear_draining("r0")
        assert "r0" in fe.candidates()

    def test_route_with_nothing_routable_raises(self):
        loop = EventLoop()
        fe = make_frontend(loop, rids=("r0",))
        fe.mark_draining("r0")
        with pytest.raises(ProtocolError, match="no routable replica"):
            fe.route("key")


class TestDrainerDeregister:
    def test_drain_with_deregister_leaves_the_registry(self):
        loop = EventLoop()
        fe = make_frontend(loop)
        s = FrontendSession(sid=0, key="k", replica="r0", mode="0rtt",
                            opened_at=0.0)
        fe.sessions.append(s)
        fe._by_rid["r0"].add(0)
        drainer = ConnectionDrainer(loop, fe)
        out = {}

        def go():
            out["moved"] = yield from drainer.drain("r0", deregister=True)

        done = loop.process(go())
        loop.run(until=1.0)
        assert done.triggered and done.ok, getattr(done, "value", None)
        assert out["moved"] == 1
        assert fe.registry.members() == ("r1", "r2")
        assert drainer.log == [(loop.now, "r0", 1)] or drainer.log[0][1] == "r0"


class TestSkewedKeys:
    def test_hot_share_is_monotone_and_normalised(self):
        keys = SkewedKeys(8, exponent=2.0)
        shares = [keys.hot_share(k) for k in range(1, 9)]
        assert shares == sorted(shares)
        assert shares[-1] == 1.0
        assert shares[0] > 1 / 8  # the top key is genuinely hot

    def test_higher_exponent_concentrates_mass(self):
        mild = SkewedKeys(8, exponent=0.5)
        harsh = SkewedKeys(8, exponent=3.0)
        assert harsh.hot_share(1) > mild.hot_share(1)

    def test_sample_matches_the_distribution(self):
        keys = SkewedKeys(4, exponent=2.0)
        rng = random.Random(7)
        counts = [0] * 4
        for _ in range(4000):
            counts[keys.sample(rng)] += 1
        assert counts[0] > counts[1] > counts[3]
        assert counts[0] / 4000 == pytest.approx(keys.hot_share(1), abs=0.05)

    def test_rejects_empty_key_space(self):
        with pytest.raises(ReproError):
            SkewedKeys(0)


class TestLeastLoadedTieBreak:
    def test_two_candidates_prefer_the_emptier(self):
        lb = LeastLoadedBalancer(seed=1)
        picks = {
            lb.pick(k, ("a", "b"), {"a": 5, "b": 0}) for k in range(20)
        }
        assert picks == {"b"}

    def test_single_candidate_short_circuits(self):
        lb = LeastLoadedBalancer(seed=1)
        assert lb.pick("k", ("only",), {}) == "only"

    def test_empty_candidates_raise(self):
        with pytest.raises(ProtocolError):
            LeastLoadedBalancer(seed=1).pick("k", (), {})
        with pytest.raises(ProtocolError):
            ConsistentHashBalancer().pick("k", ())
