"""Seeded domain-fault fuzz: incidents never corrupt or lose traffic.

Fifty seed-derived incident schedules (random spine/leaf/replica kills
with guaranteed revivals, from
:func:`repro.net.domain_faults.domain_schedule_from_seed`) each run
against a live SMT mesh on the two-rack Clos fabric while RPCs flow.
The invariants, per seed:

- every RPC eventually completes bit-exact (position-dependent fill
  verifies end to end) -- Homa resends carry traffic over the outage;
- zero integrity errors anywhere (client or server side): a blackholed
  packet may delay a message but never scrambles one;
- no session is lost silently -- a call either completes or raises
  (and with revivals inside the run, none should raise at all);
- the run is byte-identical on replay: same seed, same schedule, same
  per-RPC completion times, same fabric counters.

Failures print ``REPRODUCING SEED: <seed>`` plus the incident log; the
whole run re-derives from that one integer.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ReproError, SessionFailedError
from repro.homa import HomaConfig
from repro.load.cluster import ClusterHarness, build_request, verify_response
from repro.net.domain_faults import domain_schedule_from_seed
from repro.testbed import ClosTestbed
from repro.units import KB, USEC

DOMAIN_SEEDS = list(range(50))
#: Seeds replayed twice for byte-identical determinism (each costs a
#: second full run, so the replay set is a sample, not all fifty).
REPLAY_SEEDS = [0, 7, 19, 33, 48]

NUM_RACKS = 2
HOSTS_PER_RACK = 2
NUM_SPINES = 2
NUM_HOSTS = NUM_RACKS * HOSTS_PER_RACK
N_RPCS = 10

#: Recovery-oriented tuning (mirrors the adversarial fuzz config): tight
#: resend timers and a generous budget ride out the blackout windows.
DOMAIN_CONFIG = HomaConfig(
    unscheduled_bytes=16 * KB,
    grant_window=16 * KB,
    resend_interval=200 * USEC,
    max_resends=200,
)


def run_domain_seed(seed: int):
    """One fuzz iteration; returns (completion log, fabric totals, log)."""
    bed = ClosTestbed.leaf_spine(
        num_racks=NUM_RACKS,
        hosts_per_rack=HOSTS_PER_RACK,
        num_spines=NUM_SPINES,
        seed=1,
    )
    harness = ClusterHarness(bed, "smt", config=DOMAIN_CONFIG)
    controller = bed.domain_controller()
    events = domain_schedule_from_seed(
        seed,
        num_spines=NUM_SPINES,
        num_racks=NUM_RACKS,
        num_hosts=NUM_HOSTS,
    )
    controller.schedule(events)

    rng = random.Random(seed * 31 + 7)
    horizon = max(e.at for e in events)
    plan = []
    for serial in range(N_RPCS):
        src = rng.randrange(NUM_HOSTS)
        dst = rng.randrange(NUM_HOSTS - 1)
        if dst >= src:
            dst += 1
        size = rng.choice([256, 1024, 4096, 8192])
        at = rng.uniform(0.0, horizon)
        plan.append((serial, src, dst, size, at))

    loop = bed.loop
    completions: list = []
    failures: list = []
    response_size = 256

    def one(serial, src, dst, size, at):
        yield loop.timeout(at)
        thread = harness.thread_for(src, serial)
        request = build_request(serial, size, response_size)
        try:
            response = yield from harness.call(src, dst, thread, request)
        except ReproError as exc:
            failures.append((serial, type(exc).__name__, str(exc)))
            return
        ok = verify_response(response, serial, response_size)
        completions.append((serial, src, dst, size, round(loop.now, 12), ok))

    for item in plan:
        loop.process(one(*item))
    loop.run(until=loop.now + 0.05)
    controller.stop()

    context = f"REPRODUCING SEED: {seed} -- incidents:\n{controller.render_log()}"
    # No lost sessions without a raised SessionFailedError; with every
    # incident revived inside the run, nothing should fail at all.
    silent = [f for f in failures if f[1] != "SessionFailedError"]
    assert not silent, f"{context}\nnon-session failures: {silent}"
    assert len(completions) + len(failures) == N_RPCS, (
        f"{context}\nlost RPCs: {len(completions)} done, {len(failures)} failed"
    )
    assert not failures, f"{context}\nsessions failed: {failures}"
    bad = [c for c in completions if not c[5]]
    assert not bad, f"{context}\ncorrupted responses: {bad}"
    assert harness.server_integrity_errors == 0, (
        f"{context}\nserver saw corrupted request fills"
    )
    totals = bed.fabric.stats()
    log = list(controller.log)
    return sorted(completions), totals, log


class TestDomainFaultFuzz:
    @pytest.mark.parametrize("seed", DOMAIN_SEEDS)
    def test_incident_schedule_never_corrupts_or_loses(self, seed):
        completions, totals, log = run_domain_seed(seed)
        assert len(completions) == N_RPCS, f"REPRODUCING SEED: {seed}"
        # The schedule actually did something: at least one kill+revive
        # pair ran (domain_schedule_from_seed guarantees >= 1 incident).
        assert len(log) >= 2, f"REPRODUCING SEED: {seed} -- empty schedule"

    @pytest.mark.parametrize("seed", REPLAY_SEEDS)
    def test_replay_is_byte_identical(self, seed):
        first = run_domain_seed(seed)
        second = run_domain_seed(seed)
        assert first == second, (
            f"REPRODUCING SEED: {seed} -- replay diverged "
            "(completions, fabric totals or incident log differ)"
        )


class TestScheduleGenerator:
    def test_every_kill_is_revived_and_ordered(self):
        for seed in range(200):
            events = domain_schedule_from_seed(
                seed, num_spines=NUM_SPINES, num_racks=NUM_RACKS,
                num_hosts=NUM_HOSTS,
            )
            assert events == sorted(events, key=lambda e: e.at), seed
            open_targets: dict = {}
            for e in events:
                kind = e.action.split("_")[0]
                if e.action.endswith(("_down", "_crash")):
                    assert (kind, e.target) not in open_targets, seed
                    open_targets[(kind, e.target)] = e.at
                else:
                    assert (kind, e.target) in open_targets, seed
                    del open_targets[(kind, e.target)]
            assert not open_targets, f"seed {seed} leaves a domain dead"

    def test_schedule_is_seed_deterministic(self):
        for seed in (0, 5, 17):
            a = domain_schedule_from_seed(seed, 2, 2, 4)
            b = domain_schedule_from_seed(seed, 2, 2, 4)
            assert a == b
        assert domain_schedule_from_seed(1, 2, 2, 4) != domain_schedule_from_seed(
            2, 2, 2, 4
        )
