"""Determinism under fault injection: same seed + schedule => same run.

The fault layer must not break the substrate's reproducibility guarantee
(see ``tests/test_determinism.py``): the injector draws only from its own
``random.Random(seed)`` and schedules through the virtual-time loop, so
two runs with identical seeds must agree on every counter, every app-level
delivery, and the final virtual clock.
"""

from repro.net.faults import FaultConfig, schedule_from_seed

from tests.fuzz.harness import build_pair, random_payloads, run_exchange, start_echo_server


def run_once(seed: int, faults: FaultConfig, n: int = 8):
    """One full exchange; returns everything observable about the run."""
    pair = build_pair(faults, fault_seed=seed)
    start_echo_server(pair)
    payloads = random_payloads(seed, n, max_size=5000)
    responses = run_exchange(pair, payloads, seed=seed)
    return {
        "responses": responses,
        "delivery_order": list(pair.delivery_order),
        "fault_stats": pair.bed.fault_stats(),
        "engine_counters": pair.engine_counters(),
        "final_time": pair.bed.loop.now,
    }


class TestFaultDeterminism:
    def test_same_seed_same_schedule_identical_runs(self):
        faults = FaultConfig(
            drop_rate=0.08, corrupt_rate=0.02, duplicate_rate=0.05, reorder_rate=0.3
        )
        assert run_once(5, faults) == run_once(5, faults)

    def test_seed_derived_schedules_reproduce(self):
        for seed in (3, 11, 29):
            faults = schedule_from_seed(seed)
            assert run_once(seed, faults) == run_once(seed, faults)

    def test_different_fault_seeds_diverge(self):
        # Identical schedule and payloads, different injector seed: the
        # fault pattern (and so the counters) must actually change.
        faults = FaultConfig(drop_rate=0.2, reorder_rate=0.3)
        a = run_once(13, faults)
        faults_pair = build_pair(faults, fault_seed=14)
        start_echo_server(faults_pair)
        payloads = random_payloads(13, 8, max_size=5000)
        responses = run_exchange(faults_pair, payloads, seed=14)
        assert responses == a["responses"]  # payloads identical, still bit-exact
        assert faults_pair.bed.fault_stats() != a["fault_stats"]

    def test_burst_and_flap_runs_reproduce(self):
        faults = FaultConfig(
            drop_rate=0.03,
            burst_enter=0.02,
            burst_exit=0.3,
            burst_loss_rate=0.9,
            flap_period=400e-6,
            flap_down=60e-6,
        )
        a = run_once(31, faults)
        b = run_once(31, faults)
        assert a == b
        # Sanity: the schedule actually exercised its burst/flap machinery.
        stats = a["fault_stats"]
        total = {
            k: stats["c2s"][k] + stats["s2c"][k]
            for k in ("burst_dropped", "flap_dropped")
        }
        assert total["burst_dropped"] + total["flap_dropped"] > 0
