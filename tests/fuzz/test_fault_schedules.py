"""Seeded fuzz harness: SMT exchanges survive random adversarial networks.

Fifty seed-derived fault schedules (drop/reorder/duplicate/corrupt/burst/
flap mixes) each drive a client<->server echo exchange.  The invariants:
every delivered message is bit-exact, every corrupted record was rejected
by AEAD (never silently accepted), and a failure prints the reproducing
seed -- schedule, payloads and injector decisions all derive from it.
"""

import pytest

from repro.net.faults import FaultConfig

from tests.fuzz.harness import (
    build_pair,
    fuzz_one_seed,
    random_payloads,
    run_exchange,
    start_echo_server,
)

FUZZ_SEEDS = list(range(50))


class TestFuzzSchedules:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_exchange_survives_random_schedule(self, seed):
        pair = fuzz_one_seed(seed)
        # Recovery bookkeeping is exact: every recovered message forgave
        # exactly one message ID on the receiving session, and a schedule
        # that corrupted nothing must never have tripped authentication.
        assert (
            pair.server_session.messages_forgiven
            == pair.server_transport.corrupt_recoveries
        ), f"REPRODUCING SEED: {seed}"
        assert (
            pair.client_session.messages_forgiven
            == pair.client_transport.corrupt_recoveries
        ), f"REPRODUCING SEED: {seed}"
        corrupted = (
            pair.bed.faults_c2s.counters.corrupted.value
            + pair.bed.faults_s2c.counters.corrupted.value
        )
        auth_failures = (
            pair.client_codec.auth_failures + pair.server_codec.auth_failures
        )
        if corrupted == 0:
            assert auth_failures == 0, f"REPRODUCING SEED: {seed}"

    def test_corrupt_only_schedule_exercises_rejection(self):
        # Pure-corruption schedule: with ~30% of data packets corrupted,
        # the exchange must both (a) reject corrupted records via AEAD and
        # (b) still deliver everything bit-exact through recovery.
        seed = 1234
        faults = FaultConfig(corrupt_rate=0.3)
        pair = build_pair(faults, fault_seed=seed)
        start_echo_server(pair)
        payloads = random_payloads(seed, 8, max_size=4000)
        results = run_exchange(pair, payloads, seed=seed)
        assert results == payloads, f"REPRODUCING SEED: {seed}"
        corrupted = (
            pair.bed.faults_c2s.counters.corrupted.value
            + pair.bed.faults_s2c.counters.corrupted.value
        )
        auth_failures = (
            pair.client_codec.auth_failures + pair.server_codec.auth_failures
        )
        assert corrupted > 0, "schedule never corrupted anything"
        assert auth_failures > 0, "corrupted records were never rejected"

    def test_demo_adversarial_config(self):
        # The acceptance demo: 5% loss + 1% corruption + reordering across
        # a 100-message exchange with zero application-level corruption.
        seed = 42
        faults = FaultConfig(drop_rate=0.05, corrupt_rate=0.01, reorder_rate=0.25)
        pair = build_pair(faults, fault_seed=seed)
        start_echo_server(pair)
        payloads = random_payloads(seed, 100, max_size=3000)
        results = run_exchange(pair, payloads, until=30.0, seed=seed)
        assert results == payloads
        assert pair.server_transport.messages_delivered >= 100
        stats = pair.bed.fault_stats()
        assert stats["c2s"]["dropped"] + stats["s2c"]["dropped"] > 0

    def test_burst_loss_schedule(self):
        seed = 77
        faults = FaultConfig(burst_enter=0.02, burst_exit=0.3, burst_loss_rate=0.9)
        pair = build_pair(faults, fault_seed=seed)
        start_echo_server(pair)
        payloads = random_payloads(seed, 10, max_size=6000)
        assert run_exchange(pair, payloads, seed=seed) == payloads

    def test_link_flap_schedule(self):
        seed = 88
        # Dark for 50 us out of every 250 us: every multi-segment message
        # crosses outages and must be completed by retransmission.
        faults = FaultConfig(flap_period=250e-6, flap_down=50e-6)
        pair = build_pair(faults, fault_seed=seed)
        start_echo_server(pair)
        payloads = random_payloads(seed, 10, max_size=6000)
        assert run_exchange(pair, payloads, seed=seed) == payloads
        # Long exchanges must actually have crossed dark windows.
        stats = pair.bed.fault_stats()
        assert stats["c2s"]["flap_dropped"] + stats["s2c"]["flap_dropped"] > 0
