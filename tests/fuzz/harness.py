"""Shared harness for the seeded adversarial-network fuzz tests.

Builds a pre-shared-session SMT client/server pair (the handshake is
elided so every DATA packet on the wire is AEAD-protected ciphertext),
installs seeded fault injectors on both link directions, and runs an
echo exchange.  Everything is derived from one integer seed, so any
failure is reproduced by that seed alone -- assertion messages carry it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.codec import SmtCodec
from repro.core.session import SmtSession
from repro.homa.constants import HomaConfig
from repro.homa.engine import HomaTransport
from repro.homa.socket import HomaSocket
from repro.host.costs import CostModel
from repro.net.faults import FaultConfig, schedule_from_seed
from repro.net.headers import PROTO_SMT
from repro.testbed import Testbed
from repro.tls.keyschedule import TrafficKeys

SERVER_PORT = 7000

# Recovery-oriented transport tuning: corrupted messages are re-requested
# instead of crashing, timers are tight (microsecond RTTs), and generous
# resend budgets + mild backoff ride out burst loss and link flaps.
ADVERSARIAL_CONFIG = dict(
    corruption_recovery=True,
    resend_interval=300e-6,
    resend_backoff=1.3,
    max_resends=30,
)


@dataclass
class SmtPair:
    """A fully wired client/server SMT stack over a faulty link."""

    bed: Testbed
    csock: HomaSocket
    ssock: HomaSocket
    client_transport: HomaTransport
    server_transport: HomaTransport
    client_session: SmtSession
    server_session: SmtSession
    client_codec: SmtCodec
    server_codec: SmtCodec
    delivery_order: list = field(default_factory=list)

    def engine_counters(self) -> dict:
        """Engine-level counters from both ends (for determinism checks)."""
        out = {}
        for name, t in (("client", self.client_transport), ("server", self.server_transport)):
            out[name] = {
                "sent": t.messages_sent,
                "delivered": t.messages_delivered,
                "replays_dropped": t.replays_dropped,
                "spurious_ignored": t.spurious_ignored,
                "resend_requests": t.resend_requests,
                "packets_retransmitted": t.packets_retransmitted,
                "corrupt_recoveries": t.corrupt_recoveries,
            }
        out["client"]["auth_failures"] = self.client_codec.auth_failures
        out["server"]["auth_failures"] = self.server_codec.auth_failures
        return out


def build_pair(faults: FaultConfig, fault_seed: int, **config_overrides) -> SmtPair:
    """Two SMT stacks with a pre-shared session over an adversarial link."""
    config_kwargs = dict(ADVERSARIAL_CONFIG, **config_overrides)
    bed = Testbed.adversarial(faults, fault_seed)
    # Observe every run: packet capture (with fault verdicts) costs nothing
    # and lets failure reports show the last packets next to the seed.
    bed.enable_obs(capture_capacity=2048)
    ct = HomaTransport(bed.client, HomaConfig(**config_kwargs), proto=PROTO_SMT)
    st = HomaTransport(bed.server, HomaConfig(**config_kwargs), proto=PROTO_SMT)
    client_write = TrafficKeys(key=b"\x01" * 16, iv=b"\x02" * 12)
    server_write = TrafficKeys(key=b"\x03" * 16, iv=b"\x04" * 12)
    costs = CostModel()
    client_session = SmtSession(client_write, server_write)
    server_session = SmtSession(server_write, client_write)
    client_codec = SmtCodec(client_session, costs)
    server_codec = SmtCodec(server_session, costs)
    client_codec.bind_obs(bed.obs, "client.smt")
    server_codec.bind_obs(bed.obs, "server.smt")
    csock = HomaSocket(
        ct, bed.client.alloc_port(), codec_provider=lambda a, p: client_codec
    )
    ssock = HomaSocket(st, SERVER_PORT, codec_provider=lambda a, p: server_codec)
    return SmtPair(
        bed, csock, ssock, ct, st,
        client_session, server_session, client_codec, server_codec,
    )


def start_echo_server(pair: SmtPair):
    """Echo responder recording app-level delivery order (for determinism)."""

    def server():
        thread = pair.bed.server.app_thread(0)
        while True:
            rpc = yield from pair.ssock.recv_request(thread)
            pair.delivery_order.append(rpc.msg_id)
            yield from pair.ssock.reply(thread, rpc, rpc.payload)

    return pair.bed.loop.process(server())


def random_payloads(seed: int, n: int, max_size: int = 8000) -> list:
    rng = random.Random(seed ^ 0x5EED)
    return [
        bytes(rng.randrange(256) for _ in range(rng.randrange(1, max_size)))
        for _ in range(n)
    ]


def run_exchange(
    pair: SmtPair, payloads: list, until: float = 10.0, seed=None
) -> list:
    """Issue each payload as an echo RPC; returns the responses in order."""
    results = []

    def client():
        thread = pair.bed.client.app_thread(0)
        for payload in payloads:
            results.append(
                (yield from pair.csock.call(
                    thread, pair.bed.server.addr, SERVER_PORT, payload
                ))
            )

    done = pair.bed.loop.process(client())
    pair.bed.loop.run(until=until)
    context = f"seed={seed} faults=({pair.bed.faults_c2s.config.describe()})"
    tail = pair.bed.obs.capture.tail_text(20)
    assert done.triggered, (
        f"deadlocked exchange [{context}] fault_stats={pair.bed.fault_stats()}\n{tail}"
    )
    if not done.ok:
        raise AssertionError(f"exchange failed [{context}]\n{tail}") from done.value
    return results


def fuzz_one_seed(seed: int, n_messages: int = 6) -> SmtPair:
    """One full fuzz iteration: schedule, pair, exchange, bit-exact check."""
    faults = schedule_from_seed(seed)
    pair = build_pair(faults, fault_seed=seed)
    start_echo_server(pair)
    payloads = random_payloads(seed, n_messages)
    results = run_exchange(pair, payloads, seed=seed)
    tail = pair.bed.obs.capture.tail_text(20)
    for i, (sent, got) in enumerate(zip(payloads, results)):
        assert got == sent, (
            f"REPRODUCING SEED: {seed} -- message {i} corrupted in delivery "
            f"({len(sent)} bytes sent, faults: {faults.describe()})\n{tail}"
        )
    assert len(results) == n_messages, (
        f"REPRODUCING SEED: {seed} -- lost messages\n{tail}"
    )
    return pair
