"""Property tests for the composite sequence-number bit split (paper §4.4.1).

The 64-bit TLS record sequence number is carved into (message ID, record
index); these tests pin the boundary behaviour -- exhaustion at exactly
2^48 message IDs and 2^16 records under the default split -- and the
injectivity of the encoding under every non-default split: no two
(msg_id, record_idx) pairs may ever collide on one 64-bit seqno, or two
different records would share an AEAD nonce.
"""

import random

import pytest

from repro.core.seqspace import BitAllocation, CompositeSeqno
from repro.errors import ProtocolError, TransportError

NON_DEFAULT_SPLITS = [1, 8, 16, 31, 32, 40, 47, 56, 63]


class TestDefaultSplitBoundaries:
    def test_message_id_exhaustion_at_2_48(self):
        alloc = BitAllocation()
        assert alloc.max_message_ids == 1 << 48
        assert alloc.encode((1 << 48) - 1, 0) == ((1 << 48) - 1) << 16
        with pytest.raises(ProtocolError):
            alloc.encode(1 << 48, 0)

    def test_record_index_overflow_at_2_16(self):
        alloc = BitAllocation()
        assert alloc.max_records_per_message == 1 << 16
        assert alloc.encode(0, (1 << 16) - 1) == (1 << 16) - 1
        with pytest.raises(ProtocolError):
            alloc.encode(0, 1 << 16)

    def test_negative_inputs_rejected(self):
        alloc = BitAllocation()
        with pytest.raises(ProtocolError):
            alloc.encode(-1, 0)
        with pytest.raises(ProtocolError):
            alloc.encode(0, -1)

    def test_engine_alloc_refuses_exhausted_id_space(self):
        # The transport's ID allocator must fail typed, not wrap around.
        from repro.homa.engine import HomaTransport
        from repro.net.headers import PROTO_SMT
        from repro.testbed import Testbed

        class TinyCodec:
            def max_message_ids(self):
                return 8

        bed = Testbed.back_to_back()
        transport = HomaTransport(bed.client, proto=PROTO_SMT)
        codec = TinyCodec()
        transport.alloc_msg_id(codec)  # 2
        transport.alloc_msg_id(codec)  # 4
        transport.alloc_msg_id(codec)  # 6
        with pytest.raises(TransportError):
            transport.alloc_msg_id(codec)  # 8 == max: exhausted

    def test_seqno_decode_range_check(self):
        alloc = BitAllocation()
        with pytest.raises(ProtocolError):
            alloc.decode(1 << 64)
        with pytest.raises(ProtocolError):
            alloc.decode(-1)


class TestNonDefaultSplits:
    @pytest.mark.parametrize("bits", NON_DEFAULT_SPLITS)
    def test_boundaries_scale_with_split(self, bits):
        alloc = BitAllocation(bits)
        assert alloc.max_message_ids == 1 << bits
        assert alloc.max_records_per_message == 1 << (64 - bits)
        with pytest.raises(ProtocolError):
            alloc.encode(alloc.max_message_ids, 0)
        with pytest.raises(ProtocolError):
            alloc.encode(0, alloc.max_records_per_message)

    @pytest.mark.parametrize("bits", NON_DEFAULT_SPLITS)
    def test_encode_is_injective_under_random_sampling(self, bits):
        alloc = BitAllocation(bits)
        rng = random.Random(bits * 7919)
        pairs = set()
        # Random interior pairs plus every corner of the space.
        while len(pairs) < 500:
            pairs.add((
                rng.randrange(alloc.max_message_ids),
                rng.randrange(alloc.max_records_per_message),
            ))
        for mid in (0, alloc.max_message_ids - 1):
            for idx in (0, alloc.max_records_per_message - 1):
                pairs.add((mid, idx))
        seqnos = {alloc.encode(m, r) for (m, r) in pairs}
        assert len(seqnos) == len(pairs), f"collision under split {bits}"
        for m, r in pairs:
            assert alloc.decode(alloc.encode(m, r)) == CompositeSeqno(m, r)

    @pytest.mark.parametrize("bits", NON_DEFAULT_SPLITS)
    def test_adjacent_boundary_pairs_never_collide(self, bits):
        # The classic aliasing hazard: (msg_id, max_index) vs (msg_id+1, 0)
        # are numerically adjacent and must differ by exactly one.
        alloc = BitAllocation(bits)
        if alloc.max_message_ids < 2:
            pytest.skip("single-message split has no adjacent pair")
        hi = alloc.encode(0, alloc.max_records_per_message - 1)
        lo = alloc.encode(1, 0)
        assert lo == hi + 1
        assert alloc.decode(hi).msg_id == 0
        assert alloc.decode(lo).msg_id == 1

    def test_invalid_split_rejected(self):
        with pytest.raises(ProtocolError):
            BitAllocation(0)
        with pytest.raises(ProtocolError):
            BitAllocation(64)

    @pytest.mark.parametrize("bits", [1, 16, 48, 63])
    def test_exhaustive_injectivity_on_small_subspace(self, bits):
        # Exhaustively check a 64x64 corner tile of the space from each
        # end: all four corners of the (msg_id, record_idx) grid.
        alloc = BitAllocation(bits)
        mids = set(range(min(64, alloc.max_message_ids)))
        mids |= {alloc.max_message_ids - 1 - i for i in range(min(64, alloc.max_message_ids))}
        idxs = set(range(min(64, alloc.max_records_per_message)))
        idxs |= {
            alloc.max_records_per_message - 1 - i
            for i in range(min(64, alloc.max_records_per_message))
        }
        seen = {}
        for m in mids:
            for r in idxs:
                seqno = alloc.encode(m, r)
                assert seqno not in seen, (
                    f"split {bits}: ({m},{r}) and {seen[seqno]} share seqno {seqno}"
                )
                seen[seqno] = (m, r)
