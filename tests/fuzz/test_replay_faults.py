"""Replay defence under the fault layer (paper §6.1 non-replayability).

Two layers of defence are exercised here: the Homa engine's delivered-set
dedup (a duplicated *packet* must never surface twice to the application)
and the session's message-ID filter (a replayed *ID* is rejected by
``accept_message`` -- including after a ``rekey``, where the ID space
resets but stale pre-rekey ciphertext still dies at AEAD verification).
"""

import pytest

import repro.core.session as session_mod
from repro.core.codec import SmtCodec
from repro.core.session import SmtSession
from repro.errors import AuthenticationError
from repro.host.costs import CostModel
from repro.net.faults import FaultConfig
from repro.tls.keyschedule import TrafficKeys

from tests.fuzz.harness import build_pair, random_payloads, run_exchange, start_echo_server

KEYS_A = TrafficKeys(key=b"\x11" * 16, iv=b"\x22" * 12)
KEYS_B = TrafficKeys(key=b"\x33" * 16, iv=b"\x44" * 12)
KEYS_A2 = TrafficKeys(key=b"\x55" * 16, iv=b"\x66" * 12)
KEYS_B2 = TrafficKeys(key=b"\x77" * 16, iv=b"\x88" * 12)


class TestDuplicatedPacketsNeverDeliveredTwice:
    def test_every_packet_duplicated_single_app_delivery(self):
        # duplicate_rate=1.0: every packet on the wire arrives twice, so
        # whole messages arrive twice.  The engine's delivered-set and the
        # session's ID filter must collapse them to one app delivery each.
        seed = 7
        pair = build_pair(FaultConfig(duplicate_rate=1.0), fault_seed=seed)
        start_echo_server(pair)
        payloads = random_payloads(seed, 12, max_size=4000)
        assert run_exchange(pair, payloads, seed=seed) == payloads
        # The echo server saw each request exactly once, in order.
        assert pair.delivery_order == sorted(pair.delivery_order)
        assert len(pair.delivery_order) == len(set(pair.delivery_order)) == 12
        assert pair.server_transport.messages_delivered == 12
        dup = (
            pair.bed.faults_c2s.counters.duplicated.value
            + pair.bed.faults_s2c.counters.duplicated.value
        )
        assert dup > 0, "fault layer never duplicated anything"

    def test_duplicates_plus_drops_still_exactly_once(self):
        seed = 21
        faults = FaultConfig(duplicate_rate=0.5, drop_rate=0.1, reorder_rate=0.2)
        pair = build_pair(faults, fault_seed=seed)
        start_echo_server(pair)
        payloads = random_payloads(seed, 10, max_size=5000)
        assert run_exchange(pair, payloads, seed=seed) == payloads
        assert len(pair.delivery_order) == len(set(pair.delivery_order)) == 10


class TestAcceptMessageReplayFilter:
    def make_session(self):
        return SmtSession(KEYS_A, KEYS_B)

    def test_replayed_id_rejected_within_epoch(self):
        session = self.make_session()
        assert session.accept_message(2)
        assert not session.accept_message(2)
        assert session.replays_rejected == 1

    def test_replayed_id_rejected_after_rekey(self):
        # rekey resets the ID space (paper §4.5.2), but the filter itself
        # keeps enforcing at-most-once within the new epoch: an ID seen
        # twice after the rekey is still a replay.
        session = self.make_session()
        assert session.accept_message(2)
        session.rekey(KEYS_A2, KEYS_B2)
        assert session.accept_message(2)  # fresh epoch, fresh ID space
        assert not session.accept_message(2)  # replayed post-rekey: rejected
        assert session.replays_rejected == 1

    def test_pre_rekey_ciphertext_dies_at_aead_after_rekey(self):
        # The ID space reset is safe only because old ciphertext cannot be
        # smuggled into the new epoch: it was sealed under retired keys.
        costs = CostModel()
        sender = SmtSession(KEYS_A, KEYS_B)
        receiver = SmtSession(KEYS_B, KEYS_A)
        sender_codec = SmtCodec(sender, costs)
        receiver_codec = SmtCodec(receiver, costs)
        encoded = sender_codec.encode(2, b"pre-rekey secret", mss=1460)
        stale_wire = b"".join(plan.payload for plan in encoded.plans)
        assert receiver_codec.decode(2, stale_wire).payload == b"pre-rekey secret"
        sender.rekey(KEYS_A2, KEYS_B2)
        receiver.rekey(KEYS_B2, KEYS_A2)
        assert receiver.accept_message(2)  # the ID alone is admissible again
        with pytest.raises(AuthenticationError):
            receiver_codec.decode(2, stale_wire)  # ...but the bytes are not
        assert receiver_codec.auth_failures == 1

    def test_watermark_rejects_ancient_ids(self, monkeypatch):
        # Shrink the window so pruning happens fast, then check that an ID
        # below the watermark is rejected even though it was never seen.
        monkeypatch.setattr(session_mod, "REPLAY_WINDOW_IDS", 16)
        session = self.make_session()
        for msg_id in range(0, 200, 2):
            assert session.accept_message(msg_id)
        assert session._watermark > 0
        assert not session.accept_message(1)  # below watermark, never seen
        assert session.replays_rejected == 1

    def test_forgive_refuses_ids_below_watermark(self, monkeypatch):
        # Corruption recovery must not become a replay hole: once an ID has
        # been folded below the pruning watermark it cannot be re-admitted.
        monkeypatch.setattr(session_mod, "REPLAY_WINDOW_IDS", 16)
        session = self.make_session()
        for msg_id in range(0, 200, 2):
            session.accept_message(msg_id)
        assert not session.forgive_message(0)
        assert not session.accept_message(0)
        # A recent ID is forgivable exactly once.
        assert session.forgive_message(198)
        assert session.accept_message(198)
        assert not session.accept_message(198)
