"""Seeded front-end fault fuzz: replica crashes racing ticket refresh.

Fifty seed-derived schedules, each crashing one replica of a two-replica
service behind the ``repro.lb`` front end at a random time -- chosen to
race the :class:`~repro.ctrl.rotation.SharedShareRotator` period and the
ticket record's DNS TTL -- then reviving it and resyncing the shared
share after a random control-plane delay, while seed-timed session opens
flow through the balancer.  The invariants, per seed:

- no session open ever raises: stale membership degrades to the last
  snapshot, a reaped ticket record degrades to the cached ticket then to
  a 1-RTT fallback, a revived-but-unsynced replica rejects 0-RTT and the
  open falls back -- but the client always gets a session;
- conservation: every open resolves as exactly one of 0-RTT accept or
  1-RTT fallback (``zero_rtt_accepts + fallbacks_1rtt == opens``);
- zero client/server traffic-key mismatches on accepted 0-RTT opens;
- the health checker sees exactly one down and one up transition, and
  both replicas are live again at the end;
- the run is byte-identical on replay: same seed, same open outcomes,
  same counters, same membership and incident logs.

Failures print ``REPRODUCING SEED: <seed>`` plus the incident log; the
whole run re-derives from that one integer.
"""

from __future__ import annotations

import random

import pytest

from repro.core.zero_rtt import ZeroRttServer
from repro.crypto.ca import CertificateAuthority
from repro.crypto.cert import KEY_ALG_ECDSA
from repro.crypto.ecdsa import EcdsaKeyPair
from repro.ctrl import CtrlConfig, SharedShareRotator, TicketCache
from repro.dns.resolver import InternalDns
from repro.lb import (
    ConsistentHashBalancer,
    HealthChecker,
    ReplicaServer,
    ServiceFrontend,
    ServiceRegistry,
)
from repro.testbed import ClosTestbed
from repro.units import USEC

FRONTEND_SEEDS = list(range(50))
#: Seeds replayed twice for byte-identical determinism (each costs a
#: second full run, so the replay set is a sample, not all fifty).
REPLAY_SEEDS = [0, 11, 23, 37, 49]

SERVICE = "svc.fuzz.internal"
N_OPENS = 12
REPLICA_INDICES = (2, 3)

#: Compressed share/TTL timeline (virtual seconds), tuned so a crash in
#: the schedule window below races both the rotation period and the
#: record TTL: refreshes can find the record reaped and rotations can
#: fire while the crashed replica cannot take the install.
PERIOD = 600 * USEC
TTL = 150 * USEC
LIFETIME = 400 * USEC
MARGIN = 200 * USEC
DNS_LATENCY = 2e-6


def _pki(seed: int = 1):
    rng = random.Random(seed)
    ca = CertificateAuthority("dc-root", rng)
    key = EcdsaKeyPair.generate(rng)
    leaf = ca.issue(SERVICE, KEY_ALG_ECDSA, key.public_bytes())
    return ca, ca.chain_for(leaf), key


def run_frontend_seed(seed: int):
    """One fuzz iteration; returns the full comparable outcome tuple."""
    rng = random.Random(seed * 31 + 7)
    crash_idx = rng.choice(REPLICA_INDICES)
    crash_at = rng.uniform(100 * USEC, 400 * USEC)
    revive_at = crash_at + rng.uniform(100 * USEC, 300 * USEC)
    resync_delay = rng.uniform(50 * USEC, 150 * USEC)
    horizon = revive_at + resync_delay + 300 * USEC
    plan = [
        (serial, rng.uniform(10 * USEC, horizon), f"key-{rng.randrange(6)}")
        for serial in range(N_OPENS)
    ]

    bed = ClosTestbed.leaf_spine(
        num_racks=2, hosts_per_rack=2, num_spines=2, seed=5
    )
    bed.enable_ctrl(config=CtrlConfig(), seed=2025)
    ca, chain, key = _pki()
    roots = (ca.certificate,)
    dns = InternalDns(lookup_latency=DNS_LATENCY)
    replica_hosts = [bed.hosts[i] for i in REPLICA_INDICES]
    zservers = [
        ZeroRttServer(
            SERVICE, chain, key, random.Random(100 + i),
            lifetime=LIFETIME, grace_window=LIFETIME / 2,
        )
        for i in range(len(replica_hosts))
    ]
    replicas = {
        h.addr: ReplicaServer(h, z, plane=bed.ctrl_planes[idx])
        for h, z, idx in zip(replica_hosts, zservers, REPLICA_INDICES)
    }
    controller = bed.domain_controller()
    rotator = SharedShareRotator(
        bed.loop, zservers, dns, SERVICE,
        rng=random.Random(9), period=PERIOD, ttl=TTL,
        up_fn=lambda i: controller.is_host_up(replica_hosts[i].addr),
    )
    rotator.start()
    registry = ServiceRegistry(bed.loop, dns, SERVICE)
    for h in replica_hosts:
        registry.register(h.addr)
    registry.start()
    checker = HealthChecker(
        bed.loop, registry, interval=20e-6, down_misses=2, up_successes=2
    )
    for h in replica_hosts:
        checker.watch(h.addr, lambda addr=h.addr: controller.is_host_up(addr))
    checker.start()
    cache = TicketCache(dns, roots, refresh_margin=MARGIN)
    fe = ServiceFrontend(
        bed.loop, registry, replicas, ConsistentHashBalancer(), cache, roots,
        minter_rid=replica_hosts[0].addr, seed=seed,
    )
    controller.on_replica_revive(
        lambda idx: bed.loop.timer_later(
            resync_delay, rotator.resync, zservers[REPLICA_INDICES.index(idx)]
        )
    )
    bed.loop.timer_later(crash_at, controller.replica_crash, crash_idx)
    bed.loop.timer_later(revive_at, controller.replica_revive, crash_idx)

    rid_index = {h.addr: i for i, h in enumerate(replica_hosts)}
    outcomes: list = []
    failures: list = []

    def one_open(serial, at, key_name):
        yield bed.loop.timeout(at)
        thread = bed.hosts[0].app_thread(serial % 4)
        try:
            session = yield from fe.open_session(thread, key_name)
        except Exception as exc:  # noqa: BLE001 -- the invariant under test
            failures.append((serial, round(bed.loop.now, 12), repr(exc)))
            return
        outcomes.append(
            (serial, round(bed.loop.now, 12),
             rid_index[session.replica], session.mode)
        )

    for item in plan:
        bed.loop.process(one_open(*item))
    # Drain window: a late open can queue behind another open's keygen
    # on the same app thread, so leave room for two full 1-RTT opens.
    bed.run(until=horizon + 600 * USEC)
    rotator.stop()
    checker.stop()

    context = (
        f"REPRODUCING SEED: {seed} -- crash r{crash_idx} @ "
        f"{crash_at * 1e6:.1f}us, revive @ {revive_at * 1e6:.1f}us, "
        f"resync +{resync_delay * 1e6:.1f}us\n{controller.render_log()}"
    )
    c = fe.counters
    assert not failures, f"{context}\nopens raised: {failures}"
    assert len(outcomes) == N_OPENS, (
        f"{context}\nlost opens: {len(outcomes)} of {N_OPENS}"
    )
    assert c.zero_rtt_accepts + c.fallbacks_1rtt == c.opens == N_OPENS, (
        f"{context}\nconservation broke: "
        f"{c.zero_rtt_accepts} 0-RTT + {c.fallbacks_1rtt} 1-RTT != {c.opens}"
    )
    assert c.key_mismatches == 0, f"{context}\ntraffic keys diverged"
    assert checker.transitions == 2, (
        f"{context}\nexpected one down + one up transition, "
        f"saw {checker.transitions}: {checker.declarations}"
    )
    assert set(registry.live()) == {h.addr for h in replica_hosts}, (
        f"{context}\nreplicas not all live at end: {registry.live()}"
    )
    return (
        sorted(outcomes),
        (c.opens, c.zero_rtt_accepts, c.fallbacks_1rtt, c.cross_attempts,
         c.cross_accepts, c.stale_membership),
        (cache.hits, cache.refreshes, cache.stale_served, cache.unavailable),
        (rotator.rotations, rotator.resyncs, rotator.missed_installs),
        tuple(registry.log),
        tuple(controller.log),
    )


class TestFrontendFaultFuzz:
    @pytest.mark.parametrize("seed", FRONTEND_SEEDS)
    def test_crash_during_refresh_never_drops_an_open(self, seed):
        outcomes, counters, _cache, _rot, _reg, log = run_frontend_seed(seed)
        assert len(outcomes) == N_OPENS, f"REPRODUCING SEED: {seed}"
        # The schedule actually did something: the crash and the revival
        # both landed inside the run.
        assert len(log) >= 2, f"REPRODUCING SEED: {seed} -- empty schedule"
        # Every recorded open resolved to one of the two modes.
        assert all(mode in ("0rtt", "1rtt") for *_rest, mode in outcomes), (
            f"REPRODUCING SEED: {seed}"
        )

    @pytest.mark.parametrize("seed", REPLAY_SEEDS)
    def test_replay_is_byte_identical(self, seed):
        first = run_frontend_seed(seed)
        second = run_frontend_seed(seed)
        assert first == second, (
            f"REPRODUCING SEED: {seed} -- replay diverged "
            "(open outcomes, counters, membership or incident log differ)"
        )
