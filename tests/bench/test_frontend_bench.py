"""The frontend bench's quick mode: every band green, JSON-clean report.

The replicated-service front end is a *test*-archetype deliverable: its
deterministic bands (cross-replica 0-RTT acceptance 100% shared vs 0%
per-replica, least-loaded p99 below consistent-hash p99 under skew, zero
key mismatches, damped oscillation, graceful TTL staleness) are the
acceptance criteria, so the quick run is asserted here as well as in the
CI perf-smoke job.
"""

import json

from repro.bench.fleet import run_experiment


class TestFrontendBenchQuick:
    def test_all_bands_pass(self):
        result = run_experiment("frontend", quick=True)
        assert result.misses == 0, result.rendered
        checks = result.report_json["checks"]
        assert all(c["ok"] for c in checks), result.rendered
        by_name = {c["name"]: c for c in checks}
        # The reproduction headline: portability is all-or-nothing.
        assert by_name[
            "shared share: cross-replica 0-RTT acceptance (%)"
        ]["measured"] == 100.0
        assert by_name[
            "per-replica shares: cross-replica 0-RTT acceptance (%)"
        ]["measured"] == 0.0
        assert by_name[
            "client/server traffic-key mismatches"
        ]["measured"] == 0
        # The report survives a JSON round-trip (the --json-dir path).
        assert result.report_json == json.loads(json.dumps(result.report_json))
