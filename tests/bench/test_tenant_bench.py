"""The tenant bench's quick mode: every band green, deterministic report.

The noisy-neighbor experiment is the tenancy subsystem's acceptance
gate: victim p99 strictly better with isolation on, every issued RPC
completed in all four (tenant, mode) cells, zero integrity errors, and
the dcache epilogue's exact counts.  The quick run is asserted here as
well as in the CI perf-smoke job.
"""

import json

from repro.bench.fleet import run_experiment


class TestTenantBenchQuick:
    def test_all_bands_pass(self):
        result = run_experiment("tenant", quick=True)
        assert result.misses == 0, result.rendered
        checks = result.report_json["checks"]
        assert all(c["ok"] for c in checks), result.rendered
        by_name = {c["name"]: c for c in checks}
        assert by_name[
            "victim p99 slowdown: isolated strictly below shared"
        ]["measured"] == 1.0
        assert by_name[
            "integrity-fill errors across tenants and modes"
        ]["measured"] == 0
        assert by_name["dcache: zero dirty keys after drain"]["measured"] == 0
        # The report survives a JSON round-trip (the --json-dir path).
        assert result.report_json == json.loads(json.dumps(result.report_json))

    def test_report_bit_identical_across_reruns(self):
        reports = []
        for _ in range(2):
            report_json = run_experiment("tenant", quick=True).report_json
            report_json.pop("perf", None)  # wall-clock varies; events don't
            reports.append(json.dumps(report_json, sort_keys=True))
        assert reports[0] == reports[1]
