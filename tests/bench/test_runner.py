"""Runner sanity: every system's RPC stack works and measures sensibly."""

import pytest

from repro.bench.runner import (
    SYSTEMS,
    build_rpc_harness,
    throughput,
    unloaded_rtt,
)


class TestHarness:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_echo_roundtrip(self, system):
        harness = build_rpc_harness(system)
        bed = harness.bed
        call = harness.call_factory(0)
        out = {}

        def body():
            out["r"] = yield from call(bytes(256), 256)

        done = bed.loop.process(body())
        bed.loop.run(until=5.0)
        assert done.triggered and done.ok, getattr(done, "value", "deadlock")
        assert len(out["r"]) == 256

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            build_rpc_harness("quic")

    @pytest.mark.parametrize("system", ["smt-sw", "ktls-sw"])
    def test_asymmetric_response_size(self, system):
        harness = build_rpc_harness(system)
        call = harness.call_factory(0)
        out = {}

        def body():
            out["r"] = yield from call(bytes(64), 4096)

        done = harness.bed.loop.process(body())
        harness.bed.loop.run(until=5.0)
        assert done.ok and len(out["r"]) == 4096


class TestMeasurements:
    def test_unloaded_rtt_returns_sane_values(self):
        result = unloaded_rtt("homa", 64, repetitions=5)
        assert 5 < result.mean_us < 100
        assert result.samples == 5
        assert result.p99 >= result.mean

    def test_rtt_grows_with_size(self):
        small = unloaded_rtt("smt-sw", 64, repetitions=5).mean
        large = unloaded_rtt("smt-sw", 30_000, repetitions=5).mean
        assert large > small

    def test_throughput_measures_rate(self):
        result = throughput("homa", 64, 20, duration=1e-3, warmup=0.3e-3)
        assert result.rate > 50e3
        assert 0 < result.server_cpu < 1
        assert 0 < result.client_cpu < 1

    def test_more_concurrency_not_slower_when_unsaturated(self):
        low = throughput("homa", 64, 4, duration=1e-3).rate
        high = throughput("homa", 64, 32, duration=1e-3).rate
        assert high > low

    def test_rate_limit_caps_offered_load(self):
        limited = throughput("homa", 64, 50, duration=2e-3, rate_limit=100e3)
        assert limited.rate < 130e3

    def test_deterministic_given_seed(self):
        a = throughput("smt-sw", 64, 20, duration=1e-3)
        b = throughput("smt-sw", 64, 20, duration=1e-3)
        assert a.rate == b.rate
        assert a.mean_latency == b.mean_latency
