"""Parallel bench fleet: registry, perf bookkeeping, serial/parallel parity."""

import json

from repro.bench.fleet import EXPERIMENTS, run_experiment, run_fleet

# Fast experiments for parity runs (sub-second each); "perf" is exercised
# separately because its report *contains* wall-clock numbers by design.
FAST = ["fig5", "fig12"]


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "table1", "table2", "fig5", "fig6", "fig7", "fig7-mtu", "fig7-cpu",
            "fig8", "fig9", "fig10", "fig11", "fig12", "ablation-contexts",
            "ablation-acks", "ablation-bits", "perf", "churn", "loaded",
            "incident", "frontend", "tenant", "scale",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_experiment_adds_perf_key(self):
        result = run_experiment("fig5")
        perf = result.report_json["perf"]
        assert perf["wall_s"] >= 0
        assert perf["events"] >= 0
        assert result.report_json == json.loads(json.dumps(result.report_json))


class TestSerialParallelParity:
    def test_results_identical_minus_perf(self):
        serial = run_fleet(FAST, jobs=1)
        parallel = run_fleet(FAST, jobs=2)
        assert [r.name for r in serial] == FAST  # ordered merge
        assert [r.name for r in parallel] == FAST
        for s, p in zip(serial, parallel):
            sj = dict(s.report_json)
            pj = dict(p.report_json)
            sj.pop("perf")
            pj.pop("perf")
            assert sj == pj
            assert s.rendered == p.rendered

    def test_perf_quick_deterministic_checks(self):
        # The perf micro-benchmark's tables hold wall times (host-dependent);
        # its band checks are pure event/record counts and must agree
        # between an in-process run and a worker-process run.
        serial = run_fleet(["perf"], jobs=1, quick=True)[0]
        parallel = run_fleet(["perf", "fig5"], jobs=2, quick=True)[0]
        assert serial.report_json["checks"] == parallel.report_json["checks"]
        assert all(c["ok"] for c in serial.report_json["checks"])
