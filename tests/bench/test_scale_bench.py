"""The scale bench's quick mode: parity bands green, structure stable.

The sharded-kernel experiment is the scaling subsystem's acceptance
gate: every 1-vs-N-domain parity band (events, slowdown stats, books,
spine spread, obs digest) must be exact, the loaded experiment's
headline orderings must reproduce on the sharded kernel, and the sweep
must complete every RPC with zero integrity errors.  CI's shard-smoke
job additionally asserts rerun bit-identity and cross---domains parity
on the rendered reports; here the bands themselves are asserted once on
a cached quick run (the quick scale bench is the fleet's most expensive
quick experiment, so it runs once per test session).
"""

import json

import pytest

from repro.bench.fleet import run_experiment


@pytest.fixture(scope="module")
def scale_result():
    return run_experiment("scale", quick=True, domains=2)


class TestScaleBenchQuick:
    def test_all_bands_pass(self, scale_result):
        assert scale_result.misses == 0, scale_result.rendered
        checks = scale_result.report_json["checks"]
        assert all(c["ok"] for c in checks), scale_result.rendered

    def test_parity_bands_are_exact(self, scale_result):
        by_name = {c["name"]: c for c in scale_result.report_json["checks"]}
        for band in (
            "parity: dispatched event totals identical across domain counts",
            "parity: slowdown p50/p99/mean bit-identical across domain counts",
            "parity: issued/completed/failed/integrity books identical",
            "parity: ECMP spine spread identical across domain counts",
        ):
            assert by_name[band]["measured"] == 4, scale_result.rendered
        assert (
            by_name["parity: integer obs digest identical across domain counts"][
                "measured"
            ]
            == 1
        )
        assert (
            by_name["scale sweep: reassembly/fill integrity errors"]["measured"]
            == 0
        )

    def test_headline_orderings_reproduce_on_sharded_kernel(self, scale_result):
        by_name = {c["name"]: c for c in scale_result.report_json["checks"]}
        assert by_name["homa p99 slowdown below tcp (sharded)"]["measured"] == 1.0
        assert by_name["smt p99 slowdown below ktls (sharded)"]["measured"] == 1.0

    def test_obs_digest_embedded_and_integer_only(self, scale_result):
        digest = scale_result.report_json["obs"]["smt/scale-digest"]
        assert digest, "smt observability digest missing from report"
        assert "domains" not in digest  # must diff clean across --domains

        def ints_only(value):
            if isinstance(value, bool):
                return False
            if isinstance(value, int):
                return True
            if isinstance(value, dict):
                return all(ints_only(v) for v in value.values())
            if isinstance(value, (list, tuple)):
                return all(ints_only(v) for v in value)
            return isinstance(value, str)

        assert ints_only(digest), digest

    def test_report_survives_json_round_trip(self, scale_result):
        report_json = scale_result.report_json
        assert report_json == json.loads(json.dumps(report_json))
