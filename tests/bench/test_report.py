"""Report helpers: tables, band checks, improvement math."""

import pytest

from repro.bench.report import (
    BandCheck,
    ExperimentReport,
    format_table,
    improvement,
    latency_reduction,
)


class TestBandCheck:
    def test_inside_band(self):
        assert BandCheck("x", 10, 5, 15).ok

    def test_outside_band(self):
        assert not BandCheck("x", 20, 5, 15).ok

    def test_slack_widens(self):
        # band span 10, slack 0.5 -> +/- 5 beyond the edges.
        assert BandCheck("x", 19, 5, 15, slack=0.5).ok
        assert not BandCheck("x", 21, 5, 15, slack=0.5).ok

    def test_exact_edges(self):
        assert BandCheck("x", 5, 5, 15).ok
        assert BandCheck("x", 15, 5, 15).ok

    def test_describe_mentions_verdict(self):
        assert "OK" in BandCheck("x", 10, 5, 15).describe()
        assert "MISS" in BandCheck("x", 99, 5, 15).describe()


class TestReport:
    def test_fraction_in_band(self):
        report = ExperimentReport("t")
        report.check("a", 10, 5, 15)
        report.check("b", 99, 5, 15)
        assert report.fraction_in_band() == 0.5
        assert len(report.misses) == 1

    def test_empty_report_is_fully_in_band(self):
        assert ExperimentReport("t").fraction_in_band() == 1.0

    def test_render_includes_tables_and_checks(self):
        report = ExperimentReport("my title")
        report.add_table(["a", "b"], [(1, 2.5)])
        report.check("c", 1, 0, 2)
        rendered = report.render()
        assert "my title" in rendered and "2.5" in rendered and "[OK" in rendered


class TestFormatting:
    def test_table_alignment(self):
        out = format_table(["col", "value"], [("x", 1.0), ("longer", 22.5)])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_floats_rounded(self):
        out = format_table(["v"], [(1.23456,)])
        assert "1.2" in out and "1.2345" not in out


class TestMath:
    def test_improvement(self):
        assert improvement(120, 100) == pytest.approx(20.0)
        assert improvement(100, 0) == 0.0

    def test_latency_reduction(self):
        assert latency_reduction(100, 80) == pytest.approx(20.0)
        assert latency_reduction(0, 80) == 0.0

    def test_semantics_differ(self):
        # 80 vs 100: 20% lower latency but 25% higher rate if inverted.
        assert latency_reduction(100, 80) != improvement(100, 80)
