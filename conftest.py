"""Ensure ``src`` is importable even without an installed package.

The benchmark container is offline and cannot build editable wheels, so
tests fall back to a plain path insertion when ``repro`` is not already
installed (``python setup.py develop`` is the supported install there).
"""

import os
import sys

import pytest

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden trace files instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request):
    """True when the run should regenerate golden files."""
    return request.config.getoption("--update-goldens")
