#!/usr/bin/env python
"""Count-based perf regression gate for the CI perf-smoke job.

Every benchmark runs in virtual time with fixed seeds, so the number of
event-loop events a ``--quick`` run dispatches is *exactly* reproducible:
same code, same count, on any machine.  Wall-clock time is not -- CI
runners vary severalfold -- so this gate checks event counts and never
durations.  ``events_per_sec`` is still recorded in every report's
``perf`` key for humans reading the artifacts; here we only require that
it was measured, not that it is fast.

A mismatch means the run did different *work*, which is either a real
behaviour change (update EXPECTED_EVENTS in the same PR and say why in
the PR description) or an accidental perf regression such as a timer
leak or a retransmit storm -- the failure modes this gate exists to
catch before they hide behind noisy wall-clock numbers.

Usage: python scripts/check_bench_counts.py BENCH_DIR
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

# Exact event counts for `python -m repro.bench <name> --quick`.
EXPECTED_EVENTS = {
    "perf": 51321,
    "loaded": 169902,
    "incident": 582358,
    "tenant": 269289,
}


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    bench_dir = Path(argv[1])
    failures = []
    for name, expected in EXPECTED_EVENTS.items():
        path = bench_dir / f"BENCH_{name}.json"
        report = json.loads(path.read_text())
        perf = report.get("perf")
        if not perf:
            failures.append(f"{name}: report has no 'perf' section")
            continue
        events = perf.get("events")
        eps = perf.get("events_per_sec")
        line = f"{name}: {events} events, {eps} events/sec"
        if not isinstance(eps, int) or eps <= 0:
            failures.append(f"{line} -- events_per_sec not recorded")
        elif events != expected:
            failures.append(
                f"{line} -- expected exactly {expected} events "
                f"({events - expected:+d}); if this change is intentional, "
                f"update EXPECTED_EVENTS in {Path(__file__).name}"
            )
        else:
            print(f"  [OK  ] {line} (expected {expected})")
    for failure in failures:
        print(f"  [FAIL] {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
