#!/usr/bin/env python
"""Count-based perf regression gate for the CI perf-smoke job.

Every benchmark runs in virtual time with fixed seeds, so the number of
event-loop events a ``--quick`` run dispatches is *exactly* reproducible:
same code, same count, on any machine.  Wall-clock time is not -- CI
runners vary severalfold -- so this gate checks event counts and never
durations.  ``events_per_sec`` is still recorded in every report's
``perf`` key for humans reading the artifacts; here we only require that
it was measured, not that it is fast.

A mismatch means the run did different *work*, which is either a real
behaviour change (update EXPECTED_EVENTS in the same PR and say why in
the PR description) or an accidental perf regression such as a timer
leak or a retransmit storm -- the failure modes this gate exists to
catch before they hide behind noisy wall-clock numbers.

On any mismatch the gate prints the full expected-vs-actual table for
every pinned bench before exiting non-zero, so one PR-induced shift
across several benches reads as one table, not as N consecutive red CI
runs discovered one bench at a time.

Usage: python scripts/check_bench_counts.py BENCH_DIR
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

# Exact event counts for `python -m repro.bench <name> --quick`.
# The "scale" count is invariant to the --domains setting: sharding
# replaces each boundary hop's local receive event with exactly one
# injected arrival event in the destination domain.
EXPECTED_EVENTS = {
    "perf": 51321,
    "loaded": 169902,
    "incident": 582358,
    "tenant": 269289,
    "scale": 585544,
}


def collect(bench_dir: Path) -> list[tuple[str, int, object, str]]:
    """(name, expected, actual, problem) per pinned bench; "" means OK."""
    rows = []
    for name, expected in EXPECTED_EVENTS.items():
        path = bench_dir / f"BENCH_{name}.json"
        if not path.exists():
            rows.append((name, expected, None, "report file missing"))
            continue
        perf = json.loads(path.read_text()).get("perf")
        if not perf:
            rows.append((name, expected, None, "report has no 'perf' section"))
            continue
        events = perf.get("events")
        eps = perf.get("events_per_sec")
        if not isinstance(eps, int) or eps <= 0:
            rows.append((name, expected, events, "events_per_sec not recorded"))
        elif events != expected:
            rows.append((name, expected, events, f"drift {events - expected:+d}"))
        else:
            rows.append((name, expected, events, ""))
    return rows


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    rows = collect(Path(argv[1]))
    failures = [r for r in rows if r[3]]
    header = f"{'bench':<10} {'expected':>10} {'actual':>10}  status"
    print(header)
    print("-" * len(header))
    for name, expected, actual, problem in rows:
        shown = "-" if actual is None else actual
        status = problem if problem else "OK"
        print(f"{name:<10} {expected:>10} {shown:>10}  {status}")
    if failures:
        print(
            f"\n{len(failures)} bench(es) drifted; if intentional, update "
            f"EXPECTED_EVENTS in {Path(__file__).name} in the same PR and "
            "explain why in the PR description."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
