#!/usr/bin/env python3
"""Print a per-package coverage table from a coverage.py JSON report.

CI runs this between collecting coverage and enforcing the floor, so a
below-floor failure always comes with the table that says *which*
package dragged the total down, not just the one aggregate number.

Usage: python scripts/coverage_by_package.py [coverage.json]
"""

import json
import sys
from collections import defaultdict
from pathlib import PurePosixPath


def package_of(filename: str) -> str:
    """Map a measured file to its reporting bucket.

    ``src/repro/net/switch.py`` -> ``repro.net``; top-level modules such
    as ``src/repro/testbed.py`` all fold into ``repro``.
    """
    parts = PurePosixPath(filename.replace("\\", "/")).parts
    if "repro" in parts:
        i = parts.index("repro")
        if len(parts) > i + 2:  # repro/<package>/...
            return f"repro.{parts[i + 1]}"
        return "repro"
    return parts[0] if parts else "?"


def main(path: str = "coverage.json") -> int:
    with open(path) as fh:
        data = json.load(fh)
    per: dict[str, list[int]] = defaultdict(lambda: [0, 0])
    for filename, entry in data["files"].items():
        summary = entry["summary"]
        bucket = per[package_of(filename)]
        bucket[0] += summary["covered_lines"]
        bucket[1] += summary["num_statements"]
    if not per:
        print("no files measured", file=sys.stderr)
        return 1
    width = max(len(name) for name in per) + 2
    print(f"{'package':<{width}}  stmts  cover")
    total_covered = total_statements = 0
    for name in sorted(per):
        covered, statements = per[name]
        total_covered += covered
        total_statements += statements
        pct = 100.0 * covered / statements if statements else 100.0
        print(f"{name:<{width}}  {statements:5d}  {pct:5.1f}%")
    pct = 100.0 * total_covered / total_statements if total_statements else 100.0
    print(f"{'TOTAL':<{width}}  {total_statements:5d}  {pct:5.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
