#!/usr/bin/env python
"""Profile the hot receive path: cProfile one bench and print the top table.

Future perf PRs start from data, not vibes::

    PYTHONPATH=src python scripts/profile_hotpath.py            # loaded --quick
    PYTHONPATH=src python scripts/profile_hotpath.py incident   # another bench
    PYTHONPATH=src python scripts/profile_hotpath.py --rows 40  # deeper table
    PYTHONPATH=src python scripts/profile_hotpath.py --sort tottime

Runs the selected experiment exactly as the fleet would (``quick=True``
when the experiment supports it) under :mod:`cProfile` and prints the
top rows by cumulative time.  Band-check misses are reported but do not
fail the profile run -- wall-clock under a profiler is not a benchmark.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile one bench experiment and print the hot functions."
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="loaded",
        help="experiment name from repro.bench.fleet (default: loaded)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full-size experiment instead of --quick",
    )
    parser.add_argument(
        "--rows", type=int, default=20, help="table rows to print (default: 20)"
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort key (default: cumulative)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE", help="also dump raw pstats to FILE"
    )
    args = parser.parse_args(argv)

    from repro.bench.fleet import EXPERIMENTS, _QUICK_AWARE

    fn = EXPERIMENTS.get(args.experiment)
    if fn is None:
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"choose from: {', '.join(EXPERIMENTS)}"
        )
    quick = args.experiment in _QUICK_AWARE and not args.full
    size = "quick" if quick else "full"
    print(f"profiling {args.experiment} ({size}) ...", file=sys.stderr)

    profile = cProfile.Profile()
    profile.enable()
    report = fn(quick=True) if quick else fn()
    profile.disable()

    if report.misses:
        print(
            f"note: {len(report.misses)} band check(s) missed under the "
            "profiler (informational only)",
            file=sys.stderr,
        )
    stats = pstats.Stats(profile)
    if args.out:
        stats.dump_stats(args.out)
        print(f"raw pstats written to {args.out}", file=sys.stderr)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.rows)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
