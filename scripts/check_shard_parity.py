#!/usr/bin/env python
"""Shard-parity gate for the CI shard-smoke job.

The sharded-kernel bench (``python -m repro.bench scale``) claims that
partitioning the cluster into N parallel time domains changes *nothing*
observable: not the dispatched event total, not a single slowdown
percentile, not the ECMP spine spread.  This script turns that claim
into two count-based CI gates over ``BENCH_scale.json`` reports:

- ``--identical A B``: the two reports (same command rerun) must be
  bit-identical except for the top-level ``perf`` key, whose wall-clock
  fields legitimately vary between runs.
- ``--parity A B``: the two reports came from different ``--domains``
  settings.  Their band-check lists must be identical (every parity and
  band check equal and passing) and their ``perf.events`` totals must
  match exactly -- the partitioning may change wall-clock, never work.

Both modes are pure JSON comparisons: no wall-clock quantity is ever
gated on.

Usage:
  python scripts/check_shard_parity.py --identical A.json B.json
  python scripts/check_shard_parity.py --parity A.json B.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def _load(path: str) -> tuple[dict, dict]:
    report = json.loads(Path(path).read_text())
    perf = report.pop("perf", {})
    return report, perf


def _diff_keys(a: dict, b: dict) -> list[str]:
    return [k for k in sorted(set(a) | set(b)) if a.get(k) != b.get(k)]


def check_identical(path_a: str, path_b: str) -> int:
    a, _ = _load(path_a)
    b, _ = _load(path_b)
    if a == b:
        print(f"[OK  ] {path_a} == {path_b} (minus perf)")
        return 0
    for key in _diff_keys(a, b):
        print(f"[FAIL] section {key!r} differs between reruns")
    print(
        "reruns of the same bench command must be bit-identical minus "
        "'perf'; a diff here means nondeterminism leaked into the report"
    )
    return 1


def check_parity(path_a: str, path_b: str) -> int:
    a, perf_a = _load(path_a)
    b, perf_b = _load(path_b)
    failures = []
    if a.get("checks") != b.get("checks"):
        names_a = {c["name"]: c for c in a.get("checks", [])}
        names_b = {c["name"]: c for c in b.get("checks", [])}
        for name in sorted(set(names_a) | set(names_b)):
            if names_a.get(name) != names_b.get(name):
                failures.append(f"band check {name!r} differs across --domains")
    for side, report in (("A", a), ("B", b)):
        bad = [c["name"] for c in report.get("checks", []) if not c["ok"]]
        for name in bad:
            failures.append(f"report {side}: check {name!r} out of band")
    if perf_a.get("events") != perf_b.get("events"):
        failures.append(
            f"perf.events differs: {perf_a.get('events')} vs "
            f"{perf_b.get('events')} -- the partitioning changed the "
            "amount of simulated work"
        )
    if failures:
        for failure in failures:
            print(f"[FAIL] {failure}")
        return 1
    print(
        f"[OK  ] {path_a} and {path_b}: identical bands, all passing, "
        f"{perf_a.get('events')} events both"
    )
    return 0


def main(argv: list[str]) -> int:
    if len(argv) != 4 or argv[1] not in ("--identical", "--parity"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if argv[1] == "--identical":
        return check_identical(argv[2], argv[3])
    return check_parity(argv[2], argv[3])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
